#ifndef DATABLOCKS_OBS_QUERY_PROFILE_H_
#define DATABLOCKS_OBS_QUERY_PROFILE_H_

// Per-query execution profiles: where did this query's time go?
//
// A QueryProfile is threaded through QueryContext (tpch/queries.h) into
// the scan/aggregate pipeline helpers. Each pipeline (one fact-table
// scan+aggregate fan-out) records wall time, rows in/out, batch counts
// (split into code-carrying vs materialized), scanner-side block
// accounting (summary-pruned vs scanned, pins, archive reloads), the
// merge-step duration, and one entry per parallelism slot (morsels
// claimed, rows produced, busy time). Query drivers can add free-form
// nested spans around non-pipeline phases (sort, output).
//
// Render with Report() — an EXPLAIN-ANALYZE-style tree — or ToJson() for
// tools/profile_report.py. All recording methods are thread-safe; a null
// profile pointer anywhere means "off" and costs one predictable branch.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace datablocks::obs {

/// One parallelism slot's slice of a pipeline.
struct WorkerProfile {
  unsigned slot = 0;
  uint64_t morsels = 0;
  uint64_t batches = 0;
  uint64_t rows = 0;     // rows produced into this slot's batches
  uint64_t busy_ns = 0;  // wall time inside the worker body
};

/// One shard's slice of a sharded pipeline (exec/shard.h): how much of the
/// scan each engine instance contributed. Empty for unsharded pipelines.
struct ShardSliceProfile {
  unsigned shard = 0;
  uint64_t morsels = 0;
  uint64_t batches = 0;
  uint64_t rows = 0;
};

/// One scan+aggregate pipeline of a query. Created via
/// QueryProfile::AddPipeline; totals accumulate under a mutex (recording
/// granularity is per-morsel / per-worker, never per-row).
class PipelineProfile {
 public:
  struct Totals {
    uint64_t wall_ns = 0;   // pipeline open -> close (set by the scope)
    uint64_t merge_ns = 0;  // slot-order merge step, 0 when merge-free
    uint64_t morsels = 0;
    uint64_t batches = 0;
    uint64_t code_batches = 0;  // batches with >= 1 code-carrying column
    uint64_t rows_in = 0;       // rows in scanned (non-pruned) block ranges
    uint64_t rows_out = 0;      // rows surviving scan predicates
    uint64_t chunks_scanned = 0;
    uint64_t chunks_pruned = 0;          // SMA/PSMA or fully-deleted skips
    uint64_t evicted_chunks_pruned = 0;  // subset: summary-only, no reload
    uint64_t pins = 0;
    uint64_t archive_reloads = 0;  // pins that faulted an evicted block in
  };

  explicit PipelineProfile(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Folds one worker's slice into the totals and the per-slot list.
  void RecordWorker(const WorkerProfile& w, const Totals& contribution);
  /// Accumulates one (worker, shard) scan contribution into the per-shard
  /// slice; several workers may contribute to one shard (work stealing).
  void AddShardSlice(unsigned shard, uint64_t morsels, uint64_t batches,
                     uint64_t rows);
  void set_wall_ns(uint64_t ns);
  void set_merge_ns(uint64_t ns);

  Totals totals() const;
  std::vector<WorkerProfile> workers() const;       // sorted by slot
  std::vector<ShardSliceProfile> shards() const;    // sorted by shard

 private:
  const std::string name_;
  mutable std::mutex mu_;
  Totals totals_;
  std::vector<WorkerProfile> workers_;
  std::vector<ShardSliceProfile> shards_;
};

/// Accumulates one worker's slice of a pipeline locally (no shared-state
/// touches in the scan loop) and publishes it on destruction. All calls
/// are no-ops when constructed with a null pipeline.
class WorkerScope {
 public:
  WorkerScope(PipelineProfile* pipeline, unsigned slot);
  ~WorkerScope();

  WorkerScope(const WorkerScope&) = delete;
  WorkerScope& operator=(const WorkerScope&) = delete;

  void OnMorsel() {
    if (pipeline_ != nullptr) ++worker_.morsels;
  }
  void OnBatch(uint32_t rows, bool coded) {
    if (pipeline_ == nullptr) return;
    ++worker_.batches;
    worker_.rows += rows;
    totals_.code_batches += coded ? 1 : 0;
  }
  /// Scanner counter harvest — pass deltas (the scanner's counters since
  /// the last harvest point, e.g. per morsel: RestrictChunks resets them).
  void OnScanTotals(uint64_t chunks_scanned, uint64_t rows_in,
                    uint64_t chunks_pruned, uint64_t evicted_pruned,
                    uint64_t pins, uint64_t archive_reloads) {
    if (pipeline_ == nullptr) return;
    totals_.chunks_scanned += chunks_scanned;
    totals_.rows_in += rows_in;
    totals_.chunks_pruned += chunks_pruned;
    totals_.evicted_chunks_pruned += evicted_pruned;
    totals_.pins += pins;
    totals_.archive_reloads += archive_reloads;
  }

 private:
  PipelineProfile* pipeline_;
  WorkerProfile worker_;
  PipelineProfile::Totals totals_;  // this worker's contribution
  uint64_t start_ns_ = 0;
};

/// A named span of wall time; spans nest to form the report tree. Spans
/// and pipelines attached to the same parent render in creation order.
struct Span {
  std::string name;
  uint64_t wall_ns = 0;
  std::vector<std::unique_ptr<Span>> children;
};

class QueryProfile {
 public:
  /// `name` identifies the query ("Q6"); `config` the execution setup
  /// ("+PSMA"); `threads` the parallelism knob (0 = all hardware threads);
  /// `shards` the shard-parallel knob (1 = single-table execution).
  QueryProfile(std::string name, std::string config = "", unsigned threads = 1,
               unsigned shards = 1);
  ~QueryProfile();

  QueryProfile(const QueryProfile&) = delete;
  QueryProfile& operator=(const QueryProfile&) = delete;

  const std::string& name() const { return name_; }

  /// Adds a pipeline (rendered in creation order). Thread-safe; the
  /// returned pointer is valid for the profile's lifetime.
  PipelineProfile* AddPipeline(std::string name);

  /// Opens a nested span under `parent` (nullptr = top level). Close with
  /// EndSpan; unclosed spans are stamped when the profile finishes.
  Span* BeginSpan(std::string name, Span* parent = nullptr);
  void EndSpan(Span* span);

  /// Stamps the total wall time. Idempotent; Report/ToJson call it
  /// implicitly so a profile can be rendered while technically still open.
  void Finish();
  uint64_t wall_ns() const;

  size_t num_pipelines() const;
  const PipelineProfile* pipeline(size_t i) const;

  /// EXPLAIN-ANALYZE-style indented tree.
  std::string Report() const;
  /// One JSON object; schema in tools/profile_schema.json.
  std::string ToJson() const;

 private:
  const std::string name_;
  const std::string config_;
  const unsigned threads_;
  const unsigned shards_;
  const uint64_t start_ns_;

  mutable std::mutex mu_;
  uint64_t wall_ns_ = 0;  // 0 = still open
  std::vector<std::unique_ptr<PipelineProfile>> pipelines_;
  std::vector<std::unique_ptr<Span>> spans_;
  struct OpenSpan {
    Span* span;
    uint64_t start_ns;
  };
  std::vector<OpenSpan> open_spans_;
};

/// Monotonic nanoseconds since an arbitrary process-local epoch.
uint64_t MonotonicNs();

}  // namespace datablocks::obs

#endif  // DATABLOCKS_OBS_QUERY_PROFILE_H_
