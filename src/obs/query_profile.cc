#include "obs/query_profile.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace datablocks::obs {

uint64_t MonotonicNs() {
  return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

namespace {

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  *out += buf;
}

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (uint8_t(c) >= 0x20) out.push_back(c);
  }
  return out;
}

std::string Ms(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f ms", double(ns) / 1e6);
  return buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// PipelineProfile
// ---------------------------------------------------------------------------

void PipelineProfile::RecordWorker(const WorkerProfile& w,
                                   const Totals& contribution) {
  std::lock_guard<std::mutex> lock(mu_);
  workers_.push_back(w);
  totals_.morsels += w.morsels;
  totals_.batches += w.batches;
  totals_.rows_out += w.rows;
  totals_.code_batches += contribution.code_batches;
  totals_.rows_in += contribution.rows_in;
  totals_.chunks_scanned += contribution.chunks_scanned;
  totals_.chunks_pruned += contribution.chunks_pruned;
  totals_.evicted_chunks_pruned += contribution.evicted_chunks_pruned;
  totals_.pins += contribution.pins;
  totals_.archive_reloads += contribution.archive_reloads;
}

void PipelineProfile::AddShardSlice(unsigned shard, uint64_t morsels,
                                    uint64_t batches, uint64_t rows) {
  std::lock_guard<std::mutex> lock(mu_);
  for (ShardSliceProfile& s : shards_) {
    if (s.shard == shard) {
      s.morsels += morsels;
      s.batches += batches;
      s.rows += rows;
      return;
    }
  }
  shards_.push_back(ShardSliceProfile{shard, morsels, batches, rows});
}

void PipelineProfile::set_wall_ns(uint64_t ns) {
  std::lock_guard<std::mutex> lock(mu_);
  totals_.wall_ns = ns;
}

void PipelineProfile::set_merge_ns(uint64_t ns) {
  std::lock_guard<std::mutex> lock(mu_);
  totals_.merge_ns = ns;
}

PipelineProfile::Totals PipelineProfile::totals() const {
  std::lock_guard<std::mutex> lock(mu_);
  return totals_;
}

std::vector<WorkerProfile> PipelineProfile::workers() const {
  std::vector<WorkerProfile> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = workers_;
  }
  std::sort(out.begin(), out.end(),
            [](const WorkerProfile& a, const WorkerProfile& b) {
              return a.slot < b.slot;
            });
  return out;
}

std::vector<ShardSliceProfile> PipelineProfile::shards() const {
  std::vector<ShardSliceProfile> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = shards_;
  }
  std::sort(out.begin(), out.end(),
            [](const ShardSliceProfile& a, const ShardSliceProfile& b) {
              return a.shard < b.shard;
            });
  return out;
}

// ---------------------------------------------------------------------------
// WorkerScope
// ---------------------------------------------------------------------------

WorkerScope::WorkerScope(PipelineProfile* pipeline, unsigned slot)
    : pipeline_(pipeline) {
  if (pipeline_ == nullptr) return;
  worker_.slot = slot;
  start_ns_ = MonotonicNs();
}

WorkerScope::~WorkerScope() {
  if (pipeline_ == nullptr) return;
  worker_.busy_ns = MonotonicNs() - start_ns_;
  pipeline_->RecordWorker(worker_, totals_);
}

// ---------------------------------------------------------------------------
// QueryProfile
// ---------------------------------------------------------------------------

QueryProfile::QueryProfile(std::string name, std::string config,
                           unsigned threads, unsigned shards)
    : name_(std::move(name)),
      config_(std::move(config)),
      threads_(threads),
      shards_(shards == 0 ? 1 : shards),
      start_ns_(MonotonicNs()) {}

QueryProfile::~QueryProfile() = default;

PipelineProfile* QueryProfile::AddPipeline(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  pipelines_.push_back(std::make_unique<PipelineProfile>(std::move(name)));
  return pipelines_.back().get();
}

Span* QueryProfile::BeginSpan(std::string name, Span* parent) {
  std::lock_guard<std::mutex> lock(mu_);
  auto span = std::make_unique<Span>();
  span->name = std::move(name);
  Span* raw = span.get();
  if (parent != nullptr) {
    parent->children.push_back(std::move(span));
  } else {
    spans_.push_back(std::move(span));
  }
  open_spans_.push_back(OpenSpan{raw, MonotonicNs()});
  return raw;
}

void QueryProfile::EndSpan(Span* span) {
  const uint64_t now = MonotonicNs();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = open_spans_.begin(); it != open_spans_.end(); ++it) {
    if (it->span == span) {
      span->wall_ns = now - it->start_ns;
      open_spans_.erase(it);
      return;
    }
  }
}

void QueryProfile::Finish() {
  const uint64_t now = MonotonicNs();
  std::lock_guard<std::mutex> lock(mu_);
  for (const OpenSpan& open : open_spans_) {
    open.span->wall_ns = now - open.start_ns;
  }
  open_spans_.clear();
  if (wall_ns_ == 0) wall_ns_ = now - start_ns_;
}

uint64_t QueryProfile::wall_ns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wall_ns_ != 0 ? wall_ns_ : MonotonicNs() - start_ns_;
}

size_t QueryProfile::num_pipelines() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pipelines_.size();
}

const PipelineProfile* QueryProfile::pipeline(size_t i) const {
  std::lock_guard<std::mutex> lock(mu_);
  return i < pipelines_.size() ? pipelines_[i].get() : nullptr;
}

namespace {

void ReportSpan(const Span& span, const std::string& indent,
                std::string* out) {
  AppendF(out, "%s- span %s  wall %s\n", indent.c_str(), span.name.c_str(),
          Ms(span.wall_ns).c_str());
  for (const auto& child : span.children) {
    ReportSpan(*child, indent + "  ", out);
  }
}

void JsonSpan(const Span& span, std::string* out) {
  AppendF(out, "{\"name\": \"%s\", \"wall_ns\": %" PRIu64 ", \"children\": [",
          JsonEscape(span.name).c_str(), span.wall_ns);
  for (size_t i = 0; i < span.children.size(); ++i) {
    if (i > 0) *out += ", ";
    JsonSpan(*span.children[i], out);
  }
  *out += "]}";
}

}  // namespace

std::string QueryProfile::Report() const {
  const_cast<QueryProfile*>(this)->Finish();
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  AppendF(&out, "%s", name_.c_str());
  if (!config_.empty()) AppendF(&out, " [%s]", config_.c_str());
  AppendF(&out, "  threads=%u", threads_);
  if (shards_ > 1) AppendF(&out, "  shards=%u", shards_);
  AppendF(&out, "  wall %s\n", Ms(wall_ns_).c_str());
  for (const auto& p : pipelines_) {
    const PipelineProfile::Totals t = p->totals();
    AppendF(&out,
            "- pipeline %s  wall %s  rows %" PRIu64 " -> %" PRIu64
            "  morsels %" PRIu64 "  batches %" PRIu64 " (%" PRIu64 " coded)\n",
            p->name().c_str(), Ms(t.wall_ns).c_str(), t.rows_in, t.rows_out,
            t.morsels, t.batches, t.code_batches);
    AppendF(&out,
            "    blocks: %" PRIu64 " scanned, %" PRIu64 " pruned (%" PRIu64
            " evicted, summary-only), pins %" PRIu64 ", archive reloads %"
            PRIu64 "\n",
            t.chunks_scanned, t.chunks_pruned, t.evicted_chunks_pruned,
            t.pins, t.archive_reloads);
    if (t.merge_ns > 0) {
      AppendF(&out, "    merge %s\n", Ms(t.merge_ns).c_str());
    }
    for (const WorkerProfile& w : p->workers()) {
      AppendF(&out,
              "    worker %u: morsels %" PRIu64 "  batches %" PRIu64
              "  rows %" PRIu64 "  busy %s\n",
              w.slot, w.morsels, w.batches, w.rows, Ms(w.busy_ns).c_str());
    }
    for (const ShardSliceProfile& s : p->shards()) {
      AppendF(&out,
              "    shard %u: morsels %" PRIu64 "  batches %" PRIu64
              "  rows %" PRIu64 "\n",
              s.shard, s.morsels, s.batches, s.rows);
    }
  }
  for (const auto& span : spans_) {
    ReportSpan(*span, "", &out);
  }
  return out;
}

std::string QueryProfile::ToJson() const {
  const_cast<QueryProfile*>(this)->Finish();
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  AppendF(&out,
          "{\"query\": \"%s\", \"config\": \"%s\", \"threads\": %u, "
          "\"shards\": %u, \"wall_ns\": %" PRIu64 ", \"pipelines\": [",
          JsonEscape(name_).c_str(), JsonEscape(config_).c_str(), threads_,
          shards_, wall_ns_);
  for (size_t i = 0; i < pipelines_.size(); ++i) {
    const PipelineProfile& p = *pipelines_[i];
    const PipelineProfile::Totals t = p.totals();
    if (i > 0) out += ", ";
    AppendF(&out,
            "{\"name\": \"%s\", \"wall_ns\": %" PRIu64 ", \"merge_ns\": %"
            PRIu64 ", \"morsels\": %" PRIu64 ", \"batches\": %" PRIu64
            ", \"code_batches\": %" PRIu64 ", \"rows_in\": %" PRIu64
            ", \"rows_out\": %" PRIu64 ", \"chunks_scanned\": %" PRIu64
            ", \"chunks_pruned\": %" PRIu64 ", \"evicted_chunks_pruned\": %"
            PRIu64 ", \"pins\": %" PRIu64 ", \"archive_reloads\": %" PRIu64
            ", \"workers\": [",
            JsonEscape(p.name()).c_str(), t.wall_ns, t.merge_ns, t.morsels,
            t.batches, t.code_batches, t.rows_in, t.rows_out,
            t.chunks_scanned, t.chunks_pruned, t.evicted_chunks_pruned,
            t.pins, t.archive_reloads);
    const std::vector<WorkerProfile> workers = p.workers();
    for (size_t w = 0; w < workers.size(); ++w) {
      if (w > 0) out += ", ";
      AppendF(&out,
              "{\"slot\": %u, \"morsels\": %" PRIu64 ", \"batches\": %" PRIu64
              ", \"rows\": %" PRIu64 ", \"busy_ns\": %" PRIu64 "}",
              workers[w].slot, workers[w].morsels, workers[w].batches,
              workers[w].rows, workers[w].busy_ns);
    }
    out += "], \"shards\": [";
    const std::vector<ShardSliceProfile> shards = p.shards();
    for (size_t s = 0; s < shards.size(); ++s) {
      if (s > 0) out += ", ";
      AppendF(&out,
              "{\"shard\": %u, \"morsels\": %" PRIu64 ", \"batches\": %"
              PRIu64 ", \"rows\": %" PRIu64 "}",
              shards[s].shard, shards[s].morsels, shards[s].batches,
              shards[s].rows);
    }
    out += "]}";
  }
  out += "], \"spans\": [";
  for (size_t i = 0; i < spans_.size(); ++i) {
    if (i > 0) out += ", ";
    JsonSpan(*spans_[i], &out);
  }
  out += "]}";
  return out;
}

}  // namespace datablocks::obs
