#ifndef DATABLOCKS_OBS_JSON_H_
#define DATABLOCKS_OBS_JSON_H_

// Minimal recursive-descent JSON reader for the observability outputs:
// tests round-trip QueryProfile::ToJson() / MetricsRegistry::ToJson()
// through it, and it keeps the checked-in exposition formats honest
// without pulling in a dependency. It parses the full JSON grammar the
// engine emits (objects, arrays, strings with \" and \\ escapes, numbers,
// booleans, null); it is NOT a general-purpose validator (no \uXXXX
// decoding, no depth limit) and must never be fed untrusted input.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace datablocks::obs::json {

class Value;
using ValuePtr = std::unique_ptr<Value>;

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }

  double number() const { return number_; }
  int64_t i64() const { return int64_t(number_); }
  bool boolean() const { return bool_; }
  const std::string& str() const { return string_; }
  const std::vector<ValuePtr>& array() const { return array_; }
  const std::map<std::string, ValuePtr>& object() const { return object_; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* Get(std::string_view key) const;
  /// Array element; nullptr when out of range or not an array.
  const Value* At(size_t i) const;

 private:
  friend class Parser;
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<ValuePtr> array_;
  std::map<std::string, ValuePtr> object_;
};

/// Parses one JSON document. Returns nullptr on malformed input (with the
/// failure position in `error` when non-null). Trailing garbage after the
/// document is an error.
ValuePtr Parse(std::string_view text, std::string* error = nullptr);

}  // namespace datablocks::obs::json

#endif  // DATABLOCKS_OBS_JSON_H_
