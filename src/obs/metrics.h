#ifndef DATABLOCKS_OBS_METRICS_H_
#define DATABLOCKS_OBS_METRICS_H_

// Process-wide metrics registry: named counters, gauges and log-bucketed
// histograms, cheap enough for hot paths.
//
//  * Counter    — monotonically increasing u64. Writes are relaxed
//                 fetch_adds on one of kShards cache-line-padded shards
//                 (picked per thread), so concurrent writers from the
//                 worker pool never contend on one line; Value()
//                 aggregates on read.
//  * Gauge      — a settable i64 (resident bytes, worker counts, ...).
//  * Histogram  — log2-bucketed u64 distribution (one bucket per bit
//                 width), with p50/p95/p99 extraction. Bucketing bounds
//                 the relative quantile error at 2x, which is the right
//                 trade for latency-style metrics at one relaxed
//                 fetch_add per observation.
//
// Lookup is by dotted name ("lifecycle.freezes", "scan.chunks_pruned");
// the returned pointers are stable for the registry's lifetime, so hot
// paths resolve once (function-local static) and then touch only the
// metric itself. Exposition: ToText() for humans, ToJson() for the bench
// harness ("metrics" section) and tools/profile_report.py.
//
// Naming convention: "<component>.<event>", lower_snake_case, counters
// named after the event ("scan.pins"), histograms suffixed with the unit
// ("tpch.query_wall_ns"). See README "Observability".

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace datablocks::obs {

class Counter {
 public:
  static constexpr unsigned kShards = 16;

  void Add(uint64_t n = 1) {
    shards_[ThisShard()].v.fetch_add(n, std::memory_order_relaxed);
  }

  /// Aggregate-on-read sum over the shards. Monotone for any single
  /// observer, but concurrent Adds may or may not be included.
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  friend class MetricsRegistry;
  Counter() = default;

  static unsigned ThisShard();

  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  Shard shards_[kShards];
};

class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;

  std::atomic<int64_t> v_{0};
};

class Histogram {
 public:
  /// Bucket b holds values whose bit width is b: 0, then [2^(b-1), 2^b).
  static constexpr unsigned kBuckets = 65;

  void Observe(uint64_t v) {
    buckets_[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  uint64_t count() const {
    uint64_t n = 0;
    for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
    return n;
  }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket_count(unsigned b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  /// Quantile estimate for q in [0, 100]: finds the bucket containing the
  /// q-th observation and interpolates linearly inside it. Exact to within
  /// the bucket's bounds (relative error <= 2x); 0 when empty.
  double Percentile(double q) const;

  static unsigned BucketOf(uint64_t v);
  /// Inclusive lower / exclusive upper value bound of bucket b.
  static uint64_t BucketLo(unsigned b);
  static uint64_t BucketHi(unsigned b);

 private:
  friend class MetricsRegistry;
  Histogram() = default;

  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> sum_{0};
};

/// Name -> metric directory. Get* registers on first use and returns a
/// pointer that stays valid for the registry's lifetime; re-requesting a
/// name returns the same metric (asserting the kind matches). The process
/// normally uses Default(); tests build private registries.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Default();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// One "name kind value" line per metric, sorted by name (histograms show
  /// count/sum/p50/p95/p99).
  std::string ToText() const;
  /// {"counters": {...}, "gauges": {...}, "histograms": {name:
  /// {"count","sum","p50","p95","p99","buckets":[[lo,hi,n],...]}}}.
  std::string ToJson() const;

 private:
  struct Entry {
    enum class Kind { kCounter, kGauge, kHistogram } kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreate(std::string_view name, Entry::Kind kind);

  mutable std::mutex mu_;
  // std::map: stable iteration order makes ToText/ToJson deterministic.
  std::map<std::string, Entry, std::less<>> entries_;
};

/// Pre-registers the engine's standard metric names on the default
/// registry (idempotent), so exposition shows the full schema — zeros
/// included — even for components that have not fired yet.
void RegisterEngineMetrics();

}  // namespace datablocks::obs

#endif  // DATABLOCKS_OBS_METRICS_H_
