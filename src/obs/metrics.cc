#include "obs/metrics.h"

#include <bit>
#include <cassert>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace datablocks::obs {

unsigned Counter::ThisShard() {
  // Threads are spread round-robin over the shards at first touch; the
  // assignment is process-global so one thread hits the same shard in
  // every counter (good locality) and kShards threads cover all shards.
  static std::atomic<unsigned> next{0};
  static thread_local unsigned shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

unsigned Histogram::BucketOf(uint64_t v) {
  return unsigned(std::bit_width(v));  // 0 -> 0, [2^(b-1), 2^b) -> b
}

uint64_t Histogram::BucketLo(unsigned b) {
  return b == 0 ? 0 : uint64_t(1) << (b - 1);
}

uint64_t Histogram::BucketHi(unsigned b) {
  if (b == 0) return 1;
  if (b >= 64) return UINT64_MAX;
  return uint64_t(1) << b;
}

double Histogram::Percentile(double q) const {
  uint64_t counts[kBuckets];
  uint64_t total = 0;
  for (unsigned b = 0; b < kBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
    total += counts[b];
  }
  if (total == 0) return 0.0;
  if (q < 0) q = 0;
  if (q > 100) q = 100;
  // Rank of the requested observation (1-based, clamped into the sample).
  double rank = q / 100.0 * double(total);
  if (rank < 1) rank = 1;
  uint64_t seen = 0;
  for (unsigned b = 0; b < kBuckets; ++b) {
    if (counts[b] == 0) continue;
    if (double(seen + counts[b]) >= rank) {
      const double lo = double(BucketLo(b));
      const double hi = double(BucketHi(b));
      const double frac = (rank - double(seen)) / double(counts[b]);
      return lo + (hi - lo) * frac;
    }
    seen += counts[b];
  }
  return double(BucketHi(kBuckets - 1));
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(std::string_view name,
                                                      Entry::Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    // A name identifies one metric of one kind for the process lifetime;
    // asking for it as another kind is a naming bug, not a runtime state.
    assert(it->second.kind == kind);
    return &it->second;
  }
  Entry entry;
  entry.kind = kind;
  switch (kind) {
    case Entry::Kind::kCounter:
      entry.counter = std::unique_ptr<Counter>(new Counter());
      break;
    case Entry::Kind::kGauge:
      entry.gauge = std::unique_ptr<Gauge>(new Gauge());
      break;
    case Entry::Kind::kHistogram:
      entry.histogram = std::unique_ptr<Histogram>(new Histogram());
      break;
  }
  return &entries_.emplace(std::string(name), std::move(entry)).first->second;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  return FindOrCreate(name, Entry::Kind::kCounter)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  return FindOrCreate(name, Entry::Kind::kGauge)->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  return FindOrCreate(name, Entry::Kind::kHistogram)->histogram.get();
}

namespace {

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  *out += buf;
}

/// Metric names follow "<component>.<event>" and never need escaping, but
/// exposition must not produce invalid JSON even for an off-convention
/// name.
std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (uint8_t(c) >= 0x20) out.push_back(c);
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::ToText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Entry::Kind::kCounter:
        AppendF(&out, "%s counter %" PRIu64 "\n", name.c_str(),
                entry.counter->Value());
        break;
      case Entry::Kind::kGauge:
        AppendF(&out, "%s gauge %" PRId64 "\n", name.c_str(),
                entry.gauge->Value());
        break;
      case Entry::Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        AppendF(&out,
                "%s histogram count=%" PRIu64 " sum=%" PRIu64
                " p50=%.0f p95=%.0f p99=%.0f\n",
                name.c_str(), h.count(), h.sum(), h.Percentile(50),
                h.Percentile(95), h.Percentile(99));
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string counters, gauges, histograms;
  for (const auto& [name, entry] : entries_) {
    const std::string ename = JsonEscape(name);
    switch (entry.kind) {
      case Entry::Kind::kCounter:
        AppendF(&counters, "%s\"%s\": %" PRIu64, counters.empty() ? "" : ", ",
                ename.c_str(), entry.counter->Value());
        break;
      case Entry::Kind::kGauge:
        AppendF(&gauges, "%s\"%s\": %" PRId64, gauges.empty() ? "" : ", ",
                ename.c_str(), entry.gauge->Value());
        break;
      case Entry::Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        AppendF(&histograms,
                "%s\"%s\": {\"count\": %" PRIu64 ", \"sum\": %" PRIu64
                ", \"p50\": %.6g, \"p95\": %.6g, \"p99\": %.6g, \"buckets\": [",
                histograms.empty() ? "" : ", ", ename.c_str(), h.count(),
                h.sum(), h.Percentile(50), h.Percentile(95), h.Percentile(99));
        bool first = true;
        for (unsigned b = 0; b < Histogram::kBuckets; ++b) {
          const uint64_t n = h.bucket_count(b);
          if (n == 0) continue;
          AppendF(&histograms, "%s[%" PRIu64 ", %" PRIu64 ", %" PRIu64 "]",
                  first ? "" : ", ", Histogram::BucketLo(b),
                  Histogram::BucketHi(b), n);
          first = false;
        }
        histograms += "]}";
        break;
      }
    }
  }
  std::string out = "{\"counters\": {";
  out += counters;
  out += "}, \"gauges\": {";
  out += gauges;
  out += "}, \"histograms\": {";
  out += histograms;
  out += "}}";
  return out;
}

void RegisterEngineMetrics() {
  MetricsRegistry& r = MetricsRegistry::Default();
  // Scan layer (exec/table_scanner.cc).
  r.GetCounter("scan.chunks_pruned");
  r.GetCounter("scan.evicted_chunks_pruned");
  r.GetCounter("scan.chunks_scanned");
  r.GetCounter("scan.pins");
  r.GetCounter("scan.archive_reloads");
  r.GetCounter("scan.pin_failures");
  // Block archive (storage/block_archive.cc).
  r.GetCounter("archive.read_errors");
  r.GetCounter("archive.write_errors");
  // Scheduler (exec/scheduler.cc).
  r.GetCounter("scheduler.tasks_run");
  r.GetCounter("scheduler.steals");
  r.GetCounter("scheduler.periodic_fires");
  r.GetCounter("scheduler.morsels_remote");
  // Exchange repartitioning (exec/exchange.cc).
  r.GetCounter("exchange.partitions_shipped");
  r.GetCounter("exchange.bytes_shipped");
  r.GetHistogram("exchange.flush_ns");
  r.GetHistogram("exchange.merge_ns");
  // Lifecycle manager (lifecycle/lifecycle_manager.cc).
  r.GetCounter("lifecycle.ticks");
  r.GetCounter("lifecycle.freezes");
  r.GetCounter("lifecycle.adopted");
  r.GetCounter("lifecycle.evictions");
  r.GetCounter("lifecycle.reloads");
  r.GetCounter("lifecycle.rearchived");
  r.GetCounter("lifecycle.tombstoned");
  r.GetCounter("lifecycle.compactions");
  r.GetCounter("lifecycle.reclaimed_blocks");
  r.GetHistogram("lifecycle.tick_ns");
  r.GetCounter("lifecycle.reload_failures");
  r.GetCounter("lifecycle.retries");
  r.GetCounter("lifecycle.write_failures");
  r.GetGauge("lifecycle.quarantined");
  r.GetGauge("lifecycle.degraded");
  // JIT (jit/jit_compiler.cc).
  r.GetCounter("jit.compiles");
  r.GetCounter("jit.compile_failures");
  r.GetHistogram("jit.compile_ns");
  // Aggregation-state bytes (exec/partitioned_agg.cc, ExportGauges).
  r.GetGauge("agg.dense_bytes");
  r.GetGauge("agg.spill_bytes");
  r.GetGauge("agg.table_bytes");
  r.GetGauge("agg.peak_dense_bytes");
  r.GetGauge("agg.peak_spill_bytes");
  r.GetGauge("agg.peak_total_bytes");
  // Query drivers (tpch/query_registry.cc).
  r.GetHistogram("tpch.query_wall_ns");
  // Serving front end (serve/admission.cc, serve/server.cc). Per-client
  // "serve.client.<name>.latency_ns" histograms register dynamically at
  // OpenSession and are deliberately absent here.
  r.GetCounter("serve.submitted");
  r.GetCounter("serve.admitted");
  r.GetCounter("serve.rejected");
  r.GetCounter("serve.timed_out");
  r.GetCounter("serve.cancelled");
  r.GetCounter("serve.completed");
  r.GetCounter("serve.errors");
  r.GetCounter("serve.storage_errors");
  r.GetGauge("serve.running");
  r.GetGauge("serve.queued");
  r.GetGauge("serve.sessions");
  r.GetHistogram("serve.queue_wait_ns");
  r.GetHistogram("serve.oltp_latency_ns");
  r.GetHistogram("serve.olap_latency_ns");
  r.GetHistogram("serve.batch_latency_ns");
}

}  // namespace datablocks::obs
