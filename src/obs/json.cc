#include "obs/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace datablocks::obs::json {

const Value* Value::Get(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : it->second.get();
}

const Value* Value::At(size_t i) const {
  if (kind_ != Kind::kArray || i >= array_.size()) return nullptr;
  return array_[i].get();
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  ValuePtr Run(std::string* error) {
    ValuePtr v = ParseValue();
    SkipWs();
    if (v != nullptr && pos_ != text_.size()) {
      v = nullptr;
      fail_ = "trailing characters";
    }
    if (v == nullptr && error != nullptr) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "%s at offset %zu",
                    fail_ != nullptr ? fail_ : "parse error", pos_);
      *error = buf;
    }
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(uint8_t(text_[pos_]))) ++pos_;
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view w) {
    if (text_.substr(pos_, w.size()) != w) return false;
    pos_ += w.size();
    return true;
  }

  ValuePtr Fail(const char* why) {
    if (fail_ == nullptr) fail_ = why;
    return nullptr;
  }

  ValuePtr ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': return ParseString();
      case 't':
      case 'f': {
        auto v = std::make_unique<Value>();
        v->kind_ = Value::Kind::kBool;
        v->bool_ = c == 't';
        if (!ConsumeWord(c == 't' ? "true" : "false")) {
          return Fail("bad literal");
        }
        return v;
      }
      case 'n':
        if (!ConsumeWord("null")) return Fail("bad literal");
        return std::make_unique<Value>();
      default: return ParseNumber();
    }
  }

  ValuePtr ParseObject() {
    ++pos_;  // '{'
    auto v = std::make_unique<Value>();
    v->kind_ = Value::Kind::kObject;
    if (Consume('}')) return v;
    for (;;) {
      SkipWs();
      ValuePtr key = pos_ < text_.size() && text_[pos_] == '"'
                         ? ParseString()
                         : Fail("expected object key");
      if (key == nullptr) return nullptr;
      if (!Consume(':')) return Fail("expected ':'");
      ValuePtr member = ParseValue();
      if (member == nullptr) return nullptr;
      v->object_[key->string_] = std::move(member);
      if (Consume(',')) continue;
      if (Consume('}')) return v;
      return Fail("expected ',' or '}'");
    }
  }

  ValuePtr ParseArray() {
    ++pos_;  // '['
    auto v = std::make_unique<Value>();
    v->kind_ = Value::Kind::kArray;
    if (Consume(']')) return v;
    for (;;) {
      ValuePtr elem = ParseValue();
      if (elem == nullptr) return nullptr;
      v->array_.push_back(std::move(elem));
      if (Consume(',')) continue;
      if (Consume(']')) return v;
      return Fail("expected ',' or ']'");
    }
  }

  ValuePtr ParseString() {
    ++pos_;  // '"'
    auto v = std::make_unique<Value>();
    v->kind_ = Value::Kind::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        // The engine's writers only emit \" and \\; pass other escapes
        // through verbatim rather than rejecting the document.
        v->string_.push_back(text_[pos_++]);
        continue;
      }
      v->string_.push_back(c);
    }
    return Fail("unterminated string");
  }

  ValuePtr ParseNumber() {
    // Copy the number's characters out first: the input view is not
    // guaranteed NUL-terminated, so strtod must not run on it directly.
    char buf[64];
    size_t n = 0;
    while (pos_ < text_.size() && n < sizeof(buf) - 1) {
      const char c = text_[pos_];
      if (std::isdigit(uint8_t(c)) || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        buf[n++] = c;
        ++pos_;
      } else {
        break;
      }
    }
    buf[n] = '\0';
    char* end = nullptr;
    const double d = std::strtod(buf, &end);
    if (n == 0 || end != buf + n) return Fail("bad number");
    auto v = std::make_unique<Value>();
    v->kind_ = Value::Kind::kNumber;
    v->number_ = d;
    return v;
  }

  std::string_view text_;
  size_t pos_ = 0;
  const char* fail_ = nullptr;
};

ValuePtr Parse(std::string_view text, std::string* error) {
  return Parser(text).Run(error);
}

}  // namespace datablocks::obs::json
