#ifndef DATABLOCKS_OBS_TRACE_H_
#define DATABLOCKS_OBS_TRACE_H_

// Bounded in-memory event trace: the lifecycle manager and scheduler
// publish discrete events (freeze, evict, reload, re-archive, compaction,
// tick durations, ...) into a fixed-capacity ring that overwrites its
// oldest entries — a flight recorder, not a log. Events are small PODs
// (no allocation on the publish path) and publishing takes one short
// mutex section, which is fine at lifecycle/scheduler event rates (these
// are per-chunk / per-tick operations, never per-row).
//
// Dump with ToJsonl()/DumpJsonl(): one JSON object per line, schema
//   {"seq": N, "ts_ns": N, "cat": "...", "name": "...", "a": N, "b": N}
// where ts_ns is monotonic time since the ring's creation, and a/b are
// per-event arguments documented in README "Observability" (chunk index,
// byte counts, durations). tools/profile_report.py pretty-prints it.

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace datablocks::obs {

struct TraceEvent {
  uint64_t seq = 0;    // 0-based publish order, never reused
  uint64_t ts_ns = 0;  // monotonic, relative to the ring's creation
  char cat[16] = {};   // component, e.g. "lifecycle" (truncated copy)
  char name[24] = {};  // event, e.g. "evict" (truncated copy)
  int64_t a = 0;       // event args; meaning documented per event
  int64_t b = 0;
};

class TraceRing {
 public:
  explicit TraceRing(size_t capacity = kDefaultCapacity);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// The process-wide ring components publish into by default.
  static TraceRing& Default();

  void Publish(std::string_view cat, std::string_view name, int64_t a = 0,
               int64_t b = 0);

  size_t capacity() const { return ring_.size(); }
  /// Events ever published (>= Snapshot().size(); the excess was
  /// overwritten).
  uint64_t published() const;

  /// The retained events, oldest first.
  std::vector<TraceEvent> Snapshot() const;
  /// One JSON object per line, oldest first (see header comment).
  std::string ToJsonl() const;
  bool DumpJsonl(const std::string& path) const;

  static constexpr size_t kDefaultCapacity = 4096;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;  // fixed size; slot = seq % capacity
  uint64_t next_seq_ = 0;
  const uint64_t epoch_ns_;
};

}  // namespace datablocks::obs

#endif  // DATABLOCKS_OBS_TRACE_H_
