#ifndef DATABLOCKS_SCAN_MATCH_TABLE_H_
#define DATABLOCKS_SCAN_MATCH_TABLE_H_

#include <array>
#include <bit>
#include <cstdint>

namespace datablocks {

/// Precomputed positions table (paper Section 4.2 / Appendix C).
///
/// Entry `m` describes the outcome of an (up to) 8-way SIMD comparison whose
/// movemask is `m`: cell[j] = (position_of_jth_match << 8) | match_count.
/// Storing the count in the low byte of every cell keeps the entry usable
/// both for position emission (arithmetic shift right by 8) and as a shuffle
/// control for compacting match vectors (Figure 7(b)), while the count is
/// read from cell[0] to advance the writer. The full table is
/// 256 * 8 * 4 B = 8 KB and fits in L1.
struct MatchTableEntry {
  int32_t cell[8];
};

namespace internal {
consteval std::array<MatchTableEntry, 256> BuildMatchTable() {
  std::array<MatchTableEntry, 256> table{};
  for (int m = 0; m < 256; ++m) {
    int count = std::popcount(static_cast<unsigned>(m));
    int k = 0;
    for (int j = 0; j < 8; ++j) {
      if ((m >> j) & 1) table[m].cell[k++] = (j << 8) | count;
    }
    // Unused cells: position 0, still carrying the count. They are either
    // overwritten by the next iteration's stores or ignored by the shuffle.
    for (; k < 8; ++k) table[m].cell[k] = count;
  }
  return table;
}
}  // namespace internal

/// The global 8 KB match-positions table.
alignas(64) inline constexpr std::array<MatchTableEntry, 256> kMatchTable =
    internal::BuildMatchTable();

/// Number of matches encoded in a table entry.
inline uint32_t MatchCount(const MatchTableEntry& e) {
  return static_cast<uint8_t>(e.cell[0]);
}

}  // namespace datablocks

#endif  // DATABLOCKS_SCAN_MATCH_TABLE_H_
