#ifndef DATABLOCKS_SCAN_PREDICATE_H_
#define DATABLOCKS_SCAN_PREDICATE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "storage/value.h"

namespace datablocks {

/// SARGable comparison operators (paper Section 3: "=, is, <, <=, >, >=,
/// between"). `is [not] null` is the paper's "is". kIn and kPrefix extend the
/// paper's set with two restrictions that stay SARGable on compressed blocks:
/// an IN list translates to a set of dictionary codes (or a code range when
/// the matching codes are contiguous), and a prefix restriction (LIKE 'x%')
/// translates to a code range because the string dictionaries are
/// order-preserving.
enum class CompareOp : uint8_t {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kBetween,  // inclusive on both ends, SQL semantics
  kIn,       // membership in `list`
  kPrefix,   // string starts with `lo` (strings only)
  kIsNull,
  kIsNotNull,
};

/// A SARGable restriction on a single column. Conjunctions of Predicates are
/// pushed into scans; everything else is evaluated in the consuming pipeline.
struct Predicate {
  uint32_t col = 0;
  CompareOp op = CompareOp::kEq;
  Value lo;  // comparison constant (lower bound for kBetween)
  Value hi;  // upper bound for kBetween only
  std::vector<Value> list;  // membership constants for kIn only

  static Predicate Eq(uint32_t col, Value v) {
    return {col, CompareOp::kEq, std::move(v), Value(), {}};
  }
  static Predicate Ne(uint32_t col, Value v) {
    return {col, CompareOp::kNe, std::move(v), Value(), {}};
  }
  static Predicate Lt(uint32_t col, Value v) {
    return {col, CompareOp::kLt, std::move(v), Value(), {}};
  }
  static Predicate Le(uint32_t col, Value v) {
    return {col, CompareOp::kLe, std::move(v), Value(), {}};
  }
  static Predicate Gt(uint32_t col, Value v) {
    return {col, CompareOp::kGt, std::move(v), Value(), {}};
  }
  static Predicate Ge(uint32_t col, Value v) {
    return {col, CompareOp::kGe, std::move(v), Value(), {}};
  }
  static Predicate Between(uint32_t col, Value lo, Value hi) {
    return {col, CompareOp::kBetween, std::move(lo), std::move(hi), {}};
  }
  static Predicate In(uint32_t col, std::vector<Value> values) {
    Predicate p;
    p.col = col;
    p.op = CompareOp::kIn;
    p.list = std::move(values);
    return p;
  }
  static Predicate Prefix(uint32_t col, Value v) {
    return {col, CompareOp::kPrefix, std::move(v), Value(), {}};
  }
  static Predicate IsNull(uint32_t col) {
    return {col, CompareOp::kIsNull, Value(), Value(), {}};
  }
  static Predicate IsNotNull(uint32_t col) {
    return {col, CompareOp::kIsNotNull, Value(), Value(), {}};
  }
};

}  // namespace datablocks

#endif  // DATABLOCKS_SCAN_PREDICATE_H_
