#include "scan/match_finder.h"

#include <immintrin.h>

#include <type_traits>

#include "scan/match_table.h"
#include "util/cpu.h"

// The library is compiled for baseline x86-64; every function that touches
// AVX2/BMI2 or SSE4.2 instructions is annotated with a `target` attribute so
// the compiler enables those ISAs for that function only. Selection happens
// at run time (BestIsa / ClampIsa), so the same binary runs — and the tests
// pass — on hosts without AVX2. All vector-typed (`__m256i`/`__m128i`)
// signatures stay on internal-linkage helpers inside this translation unit,
// which keeps the -Wpsabi ABI warnings (vector argument passing without the
// matching ISA enabled globally) out of the build.
#define DB_TARGET_AVX2 __attribute__((target("avx2,bmi2")))
#define DB_TARGET_SSE42 __attribute__((target("sse4.2")))

namespace datablocks {

Isa BestIsa() {
  if (cpu::HasAvx2()) return Isa::kAvx2;
  if (cpu::HasSse42()) return Isa::kSse;
  return Isa::kScalar;
}

bool IsaSupported(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return true;
    case Isa::kSse: return cpu::HasSse42();
    case Isa::kAvx2: return cpu::HasAvx2();
  }
  return false;
}

Isa ClampIsa(Isa isa) {
  if (isa == Isa::kAvx2 && !cpu::HasAvx2()) isa = Isa::kSse;
  if (isa == Isa::kSse && !cpu::HasSse42()) isa = Isa::kScalar;
  return isa;
}

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return "x86";
    case Isa::kSse: return "SSE";
    case Isa::kAvx2: return "AVX2";
  }
  return "?";
}

namespace {

// ---------------------------------------------------------------------------
// Position emission from comparison bit-masks via the precomputed table
// (Appendix C). Each call consumes an (up to) 8-bit mask whose bit j set
// means "lane j at absolute position base + j matches".
// ---------------------------------------------------------------------------

DB_TARGET_AVX2 inline uint32_t* EmitAvx2(uint32_t mask8, uint32_t base,
                                         uint32_t* writer) {
  const MatchTableEntry& e = kMatchTable[mask8];
  __m256i entry =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(e.cell));
  __m256i pos = _mm256_srai_epi32(entry, 8);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(writer),
                      _mm256_add_epi32(pos, _mm256_set1_epi32(int(base))));
  return writer + MatchCount(e);
}

DB_TARGET_SSE42 inline uint32_t* EmitSse(uint32_t mask8, uint32_t base,
                                         uint32_t* writer) {
  const MatchTableEntry& e = kMatchTable[mask8];
  __m128i lo = _mm_srai_epi32(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(e.cell)), 8);
  __m128i hi = _mm_srai_epi32(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(e.cell + 4)), 8);
  __m128i basev = _mm_set1_epi32(int(base));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(writer),
                   _mm_add_epi32(lo, basev));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(writer + 4),
                   _mm_add_epi32(hi, basev));
  return writer + MatchCount(e);
}

// ---------------------------------------------------------------------------
// Scalar kernels (branch-free, the paper's "x86" baseline). These are also
// the portable fallback selected on hosts without SSE4.2/AVX2 or under
// DATABLOCKS_FORCE_SCALAR.
// ---------------------------------------------------------------------------

template <typename T>
uint32_t FindBetweenScalar(const T* data, uint32_t from, uint32_t to, T lo,
                           T hi, uint32_t* out) {
  uint32_t* w = out;
  for (uint32_t i = from; i < to; ++i) {
    *w = i;
    w += (data[i] >= lo) & (data[i] <= hi);
  }
  return static_cast<uint32_t>(w - out);
}

template <typename T>
uint32_t FindNeScalar(const T* data, uint32_t from, uint32_t to, T v,
                      uint32_t* out) {
  uint32_t* w = out;
  for (uint32_t i = from; i < to; ++i) {
    *w = i;
    w += (data[i] != v);
  }
  return static_cast<uint32_t>(w - out);
}

template <typename T>
uint32_t ReduceBetweenScalar(const T* data, const uint32_t* positions,
                             uint32_t n, T lo, T hi, uint32_t* out) {
  uint32_t* w = out;
  for (uint32_t j = 0; j < n; ++j) {
    uint32_t p = positions[j];
    *w = p;
    w += (data[p] >= lo) & (data[p] <= hi);
  }
  return static_cast<uint32_t>(w - out);
}

template <typename T>
uint32_t ReduceNeScalar(const T* data, const uint32_t* positions, uint32_t n,
                        T v, uint32_t* out) {
  uint32_t* w = out;
  for (uint32_t j = 0; j < n; ++j) {
    uint32_t p = positions[j];
    *w = p;
    w += (data[p] != v);
  }
  return static_cast<uint32_t>(w - out);
}

// ---------------------------------------------------------------------------
// SIMD comparison helpers. Unsigned element types are compared with signed
// compare instructions after flipping the sign bit of both operands
// (order-preserving bijection unsigned -> signed).
// ---------------------------------------------------------------------------

template <typename T>
constexpr T SignFlip() {
  if constexpr (std::is_signed_v<T>) {
    return T(0);
  } else {
    return T(T(1) << (sizeof(T) * 8 - 1));
  }
}

// Returns a bit mask (one bit per lane, lane 0 = LSB) of lanes where
// lo <= data[i] <= hi, for one 256-bit vector of width-W elements.
// kAvx2Between<W> and kSseBetween<W> below.

template <int W>
struct Avx2;

template <>
struct Avx2<1> {
  static constexpr uint32_t kLanes = 32;
  using Reg = __m256i;
  DB_TARGET_AVX2 static Reg Splat(int64_t v) {
    return _mm256_set1_epi8(char(v));
  }
  DB_TARGET_AVX2 static Reg Load(const void* p) {
    return _mm256_loadu_si256(static_cast<const __m256i*>(p));
  }
  DB_TARGET_AVX2 static Reg Gt(Reg a, Reg b) {
    return _mm256_cmpgt_epi8(a, b);
  }
  DB_TARGET_AVX2 static Reg Eq(Reg a, Reg b) {
    return _mm256_cmpeq_epi8(a, b);
  }
  DB_TARGET_AVX2 static uint32_t Mask(Reg m) {
    return static_cast<uint32_t>(_mm256_movemask_epi8(m));
  }
};

template <>
struct Avx2<2> {
  static constexpr uint32_t kLanes = 16;
  using Reg = __m256i;
  DB_TARGET_AVX2 static Reg Splat(int64_t v) {
    return _mm256_set1_epi16(short(v));
  }
  DB_TARGET_AVX2 static Reg Load(const void* p) {
    return _mm256_loadu_si256(static_cast<const __m256i*>(p));
  }
  DB_TARGET_AVX2 static Reg Gt(Reg a, Reg b) {
    return _mm256_cmpgt_epi16(a, b);
  }
  DB_TARGET_AVX2 static Reg Eq(Reg a, Reg b) {
    return _mm256_cmpeq_epi16(a, b);
  }
  DB_TARGET_AVX2 static uint32_t Mask(Reg m) {
    // One bit per 16-bit lane: extract the odd bits of the byte mask.
    return _pext_u32(static_cast<uint32_t>(_mm256_movemask_epi8(m)),
                     0xAAAAAAAAu);
  }
};

template <>
struct Avx2<4> {
  static constexpr uint32_t kLanes = 8;
  using Reg = __m256i;
  DB_TARGET_AVX2 static Reg Splat(int64_t v) {
    return _mm256_set1_epi32(int(v));
  }
  DB_TARGET_AVX2 static Reg Load(const void* p) {
    return _mm256_loadu_si256(static_cast<const __m256i*>(p));
  }
  DB_TARGET_AVX2 static Reg Gt(Reg a, Reg b) {
    return _mm256_cmpgt_epi32(a, b);
  }
  DB_TARGET_AVX2 static Reg Eq(Reg a, Reg b) {
    return _mm256_cmpeq_epi32(a, b);
  }
  DB_TARGET_AVX2 static uint32_t Mask(Reg m) {
    return static_cast<uint32_t>(_mm256_movemask_ps(_mm256_castsi256_ps(m)));
  }
};

template <>
struct Avx2<8> {
  static constexpr uint32_t kLanes = 4;
  using Reg = __m256i;
  DB_TARGET_AVX2 static Reg Splat(int64_t v) { return _mm256_set1_epi64x(v); }
  DB_TARGET_AVX2 static Reg Load(const void* p) {
    return _mm256_loadu_si256(static_cast<const __m256i*>(p));
  }
  DB_TARGET_AVX2 static Reg Gt(Reg a, Reg b) {
    return _mm256_cmpgt_epi64(a, b);
  }
  DB_TARGET_AVX2 static Reg Eq(Reg a, Reg b) {
    return _mm256_cmpeq_epi64(a, b);
  }
  DB_TARGET_AVX2 static uint32_t Mask(Reg m) {
    return static_cast<uint32_t>(_mm256_movemask_pd(_mm256_castsi256_pd(m)));
  }
};

template <int W>
struct Sse;

template <>
struct Sse<1> {
  static constexpr uint32_t kLanes = 16;
  using Reg = __m128i;
  DB_TARGET_SSE42 static Reg Splat(int64_t v) { return _mm_set1_epi8(char(v)); }
  DB_TARGET_SSE42 static Reg Load(const void* p) {
    return _mm_loadu_si128(static_cast<const __m128i*>(p));
  }
  DB_TARGET_SSE42 static Reg Gt(Reg a, Reg b) { return _mm_cmpgt_epi8(a, b); }
  DB_TARGET_SSE42 static Reg Eq(Reg a, Reg b) { return _mm_cmpeq_epi8(a, b); }
  DB_TARGET_SSE42 static uint32_t Mask(Reg m) {
    return static_cast<uint32_t>(_mm_movemask_epi8(m));
  }
};

template <>
struct Sse<2> {
  static constexpr uint32_t kLanes = 8;
  using Reg = __m128i;
  DB_TARGET_SSE42 static Reg Splat(int64_t v) {
    return _mm_set1_epi16(short(v));
  }
  DB_TARGET_SSE42 static Reg Load(const void* p) {
    return _mm_loadu_si128(static_cast<const __m128i*>(p));
  }
  DB_TARGET_SSE42 static Reg Gt(Reg a, Reg b) { return _mm_cmpgt_epi16(a, b); }
  DB_TARGET_SSE42 static Reg Eq(Reg a, Reg b) { return _mm_cmpeq_epi16(a, b); }
  DB_TARGET_SSE42 static uint32_t Mask(Reg m) {
    // One bit per 16-bit lane. Saturating pack turns each 0x0000/0xFFFF lane
    // into a 0x00/0xFF byte; no PEXT, so the SSE flavor needs no BMI2.
    return static_cast<uint32_t>(
        _mm_movemask_epi8(_mm_packs_epi16(m, _mm_setzero_si128())));
  }
};

template <>
struct Sse<4> {
  static constexpr uint32_t kLanes = 4;
  using Reg = __m128i;
  DB_TARGET_SSE42 static Reg Splat(int64_t v) { return _mm_set1_epi32(int(v)); }
  DB_TARGET_SSE42 static Reg Load(const void* p) {
    return _mm_loadu_si128(static_cast<const __m128i*>(p));
  }
  DB_TARGET_SSE42 static Reg Gt(Reg a, Reg b) { return _mm_cmpgt_epi32(a, b); }
  DB_TARGET_SSE42 static Reg Eq(Reg a, Reg b) { return _mm_cmpeq_epi32(a, b); }
  DB_TARGET_SSE42 static uint32_t Mask(Reg m) {
    return static_cast<uint32_t>(_mm_movemask_ps(_mm_castsi128_ps(m)));
  }
};

template <>
struct Sse<8> {
  static constexpr uint32_t kLanes = 2;
  using Reg = __m128i;
  DB_TARGET_SSE42 static Reg Splat(int64_t v) { return _mm_set1_epi64x(v); }
  DB_TARGET_SSE42 static Reg Load(const void* p) {
    return _mm_loadu_si128(static_cast<const __m128i*>(p));
  }
  DB_TARGET_SSE42 static Reg Gt(Reg a, Reg b) { return _mm_cmpgt_epi64(a, b); }
  DB_TARGET_SSE42 static Reg Eq(Reg a, Reg b) { return _mm_cmpeq_epi64(a, b); }
  DB_TARGET_SSE42 static uint32_t Mask(Reg m) {
    return static_cast<uint32_t>(_mm_movemask_pd(_mm_castsi128_pd(m)));
  }
};

// Width-agnostic vector helpers selected by overload resolution.
DB_TARGET_SSE42 inline __m128i SimdXor(__m128i a, __m128i b) {
  return _mm_xor_si128(a, b);
}
DB_TARGET_AVX2 inline __m256i SimdXor(__m256i a, __m256i b) {
  return _mm256_xor_si256(a, b);
}
DB_TARGET_SSE42 inline __m128i SimdOr(__m128i a, __m128i b) {
  return _mm_or_si128(a, b);
}
DB_TARGET_AVX2 inline __m256i SimdOr(__m256i a, __m256i b) {
  return _mm256_or_si256(a, b);
}

// Generic SIMD "find initial matches" loops over ops O (Avx2<W> or Sse<W>).
// Emit writes positions for one <=8 bit mask group.
//
// The loop bodies are defined once as a macro and stamped out per ISA family
// below: a single shared template cannot carry the `target` attribute,
// because the attribute would have to differ per instantiation (compiling
// the SSE flavor with AVX2 enabled would let the compiler emit AVX
// encodings that fault on SSE-only hosts, and vice versa loses inlining).

#define DB_DEFINE_FIND_DRIVERS(SUFFIX, TARGET, OPS, EMIT)                      \
  template <typename T>                                                        \
  TARGET uint32_t FindNe##SUFFIX(const T* data, uint32_t from, uint32_t to,    \
                                 T val, uint32_t* out) {                       \
    using O = OPS<sizeof(T)>;                                                  \
    using Reg = typename O::Reg;                                               \
    constexpr uint32_t kLanes = O::kLanes;                                     \
    using S = std::make_signed_t<T>;                                           \
    const Reg cv = O::Splat(int64_t(S(val)));                                  \
    const uint32_t kFullMask =                                                 \
        kLanes >= 32 ? 0xFFFFFFFFu : ((1u << kLanes) - 1);                     \
                                                                               \
    uint32_t* w = out;                                                         \
    uint32_t i = from;                                                         \
    for (; i + kLanes <= to; i += kLanes) {                                    \
      Reg v = O::Load(data + i);                                               \
      uint32_t mask = ~O::Mask(O::Eq(v, cv)) & kFullMask;                      \
      for (uint32_t g = 0; g < kLanes; g += 8) {                               \
        w = EMIT((mask >> g) & 0xFF, i + g, w);                                \
      }                                                                        \
    }                                                                          \
    for (; i < to; ++i) {                                                      \
      *w = i;                                                                  \
      w += (data[i] != val);                                                   \
    }                                                                          \
    return static_cast<uint32_t>(w - out);                                     \
  }                                                                            \
                                                                               \
  template <typename T>                                                        \
  TARGET uint32_t FindBetween##SUFFIX(const T* data, uint32_t from,            \
                                      uint32_t to, T lo, T hi,                 \
                                      uint32_t* out) {                         \
    using O = OPS<sizeof(T)>;                                                  \
    using Reg = typename O::Reg;                                               \
    constexpr uint32_t kLanes = O::kLanes;                                     \
    constexpr T kFlip = SignFlip<T>();                                         \
    using S = std::make_signed_t<T>;                                           \
    const Reg flip = O::Splat(int64_t(S(kFlip)));                              \
    const Reg lov = O::Splat(int64_t(S(T(lo ^ kFlip))));                       \
    const Reg hiv = O::Splat(int64_t(S(T(hi ^ kFlip))));                       \
    const uint32_t kFullMask =                                                 \
        kLanes >= 32 ? 0xFFFFFFFFu : ((1u << kLanes) - 1);                     \
                                                                               \
    uint32_t* w = out;                                                         \
    uint32_t i = from;                                                         \
    for (; i + kLanes <= to; i += kLanes) {                                    \
      Reg v = O::Load(data + i);                                               \
      v = SimdXor(v, flip);                                                    \
      Reg bad = SimdOr(O::Gt(lov, v), O::Gt(v, hiv));                          \
      uint32_t mask = ~O::Mask(bad) & kFullMask;                               \
      for (uint32_t g = 0; g < kLanes; g += 8) {                               \
        w = EMIT((mask >> g) & 0xFF, i + g, w);                                \
      }                                                                        \
    }                                                                          \
    for (; i < to; ++i) {                                                      \
      *w = i;                                                                  \
      w += (data[i] >= lo) & (data[i] <= hi);                                  \
    }                                                                          \
    return static_cast<uint32_t>(w - out);                                     \
  }

DB_DEFINE_FIND_DRIVERS(Avx2K, DB_TARGET_AVX2, Avx2, EmitAvx2)
DB_DEFINE_FIND_DRIVERS(SseK, DB_TARGET_SSE42, Sse, EmitSse)

#undef DB_DEFINE_FIND_DRIVERS

// ---------------------------------------------------------------------------
// AVX2 "reduce matches" (Figure 7(b)): gather values at the surviving match
// positions, compare, and use the positions-table entry as a shuffle control
// to compact the match vector in place.
// ---------------------------------------------------------------------------

// Gathers 8 elements of width W (1, 2 or 4 bytes) at byte granularity and
// returns them zero-extended (W<4) in 8 32-bit lanes.
template <int W>
DB_TARGET_AVX2 inline __m256i Gather32(const void* base, __m256i idx) {
  if constexpr (W == 1) {
    __m256i v = _mm256_i32gather_epi32(static_cast<const int*>(base), idx, 1);
    return _mm256_and_si256(v, _mm256_set1_epi32(0xFF));
  } else if constexpr (W == 2) {
    __m256i v = _mm256_i32gather_epi32(static_cast<const int*>(base), idx, 2);
    return _mm256_and_si256(v, _mm256_set1_epi32(0xFFFF));
  } else {
    return _mm256_i32gather_epi32(static_cast<const int*>(base), idx, 4);
  }
}

// T is uint8_t/uint16_t (zero-extended, compared unbias'd because values fit
// in int32) or uint32_t/int32_t (compared with sign-flip bias as needed).
template <typename T>
DB_TARGET_AVX2 uint32_t ReduceBetweenAvx2(const T* data,
                                          const uint32_t* positions,
                                          uint32_t n, T lo, T hi,
                                          uint32_t* out) {
  static_assert(sizeof(T) <= 4);
  constexpr int W = sizeof(T);
  // Bias for full-range 32-bit values; narrow codes are zero-extended and
  // compare correctly as signed int32 without bias.
  constexpr uint32_t kBias =
      (W == 4 && std::is_unsigned_v<T>) ? 0x80000000u : 0u;
  [[maybe_unused]] const __m256i biasv = _mm256_set1_epi32(int(kBias));
  const __m256i lov = _mm256_set1_epi32(int(uint32_t(lo) ^ kBias));
  const __m256i hiv = _mm256_set1_epi32(int(uint32_t(hi) ^ kBias));

  uint32_t* w = out;
  uint32_t j = 0;
  for (; j + 8 <= n; j += 8) {
    __m256i idx = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(positions + j));
    __m256i v = Gather32<W>(data, idx);
    if constexpr (kBias != 0) v = _mm256_xor_si256(v, biasv);
    __m256i bad = _mm256_or_si256(_mm256_cmpgt_epi32(lov, v),
                                  _mm256_cmpgt_epi32(v, hiv));
    uint32_t mask =
        ~uint32_t(_mm256_movemask_ps(_mm256_castsi256_ps(bad))) & 0xFFu;
    const MatchTableEntry& e = kMatchTable[mask];
    __m256i perm = _mm256_srai_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(e.cell)), 8);
    __m256i packed = _mm256_permutevar8x32_epi32(idx, perm);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(w), packed);
    w += MatchCount(e);
  }
  for (; j < n; ++j) {
    uint32_t p = positions[j];
    *w = p;
    w += (data[p] >= lo) & (data[p] <= hi);
  }
  return static_cast<uint32_t>(w - out);
}

template <typename T>
DB_TARGET_AVX2 uint32_t ReduceNeAvx2(const T* data, const uint32_t* positions,
                                     uint32_t n, T val, uint32_t* out) {
  static_assert(sizeof(T) <= 4);
  constexpr int W = sizeof(T);
  const __m256i cv = _mm256_set1_epi32(int(uint32_t(val)));

  uint32_t* w = out;
  uint32_t j = 0;
  for (; j + 8 <= n; j += 8) {
    __m256i idx = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(positions + j));
    __m256i v = Gather32<W>(data, idx);
    uint32_t mask =
        ~uint32_t(_mm256_movemask_ps(
            _mm256_castsi256_ps(_mm256_cmpeq_epi32(v, cv)))) &
        0xFFu;
    const MatchTableEntry& e = kMatchTable[mask];
    __m256i perm = _mm256_srai_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(e.cell)), 8);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(w),
                        _mm256_permutevar8x32_epi32(idx, perm));
    w += MatchCount(e);
  }
  for (; j < n; ++j) {
    uint32_t p = positions[j];
    *w = p;
    w += (data[p] != val);
  }
  return static_cast<uint32_t>(w - out);
}

}  // namespace

// ---------------------------------------------------------------------------
// Public dispatch. Requested ISAs above what the host supports are clamped
// down, so an explicit Isa::kAvx2 is safe (it silently runs the best
// available flavor instead of faulting).
// ---------------------------------------------------------------------------

template <typename T>
uint32_t FindMatchesBetween(const T* data, uint32_t from, uint32_t to, T lo,
                            T hi, Isa isa, uint32_t* out) {
  if (lo > hi || from >= to) return 0;
  switch (ClampIsa(isa)) {
    case Isa::kScalar:
      return FindBetweenScalar(data, from, to, lo, hi, out);
    case Isa::kSse:
      return FindBetweenSseK(data, from, to, lo, hi, out);
    case Isa::kAvx2:
      return FindBetweenAvx2K(data, from, to, lo, hi, out);
  }
  return 0;
}

template <typename T>
uint32_t FindMatchesNe(const T* data, uint32_t from, uint32_t to, T v, Isa isa,
                       uint32_t* out) {
  if (from >= to) return 0;
  switch (ClampIsa(isa)) {
    case Isa::kScalar:
      return FindNeScalar(data, from, to, v, out);
    case Isa::kSse:
      return FindNeSseK(data, from, to, v, out);
    case Isa::kAvx2:
      return FindNeAvx2K(data, from, to, v, out);
  }
  return 0;
}

template <typename T>
uint32_t ReduceMatchesBetween(const T* data, const uint32_t* positions,
                              uint32_t n, T lo, T hi, Isa isa, uint32_t* out) {
  if (lo > hi) return 0;
  // The SIMD gather path exists for <=32-bit elements and AVX2 only; the
  // paper reports that 64-bit reduction does not benefit from SIMD
  // (Section 4.2), and Figure 9 compares scalar vs AVX2.
  if constexpr (sizeof(T) <= 4) {
    if (ClampIsa(isa) == Isa::kAvx2) {
      return ReduceBetweenAvx2(data, positions, n, lo, hi, out);
    }
  }
  return ReduceBetweenScalar(data, positions, n, lo, hi, out);
}

template <typename T>
uint32_t ReduceMatchesNe(const T* data, const uint32_t* positions, uint32_t n,
                         T v, Isa isa, uint32_t* out) {
  if constexpr (sizeof(T) <= 4) {
    if (ClampIsa(isa) == Isa::kAvx2) {
      return ReduceNeAvx2(data, positions, n, v, out);
    }
  }
  return ReduceNeScalar(data, positions, n, v, out);
}

uint32_t FindMatchesBetweenF64(const double* data, uint32_t from, uint32_t to,
                               double lo, double hi, uint32_t* out) {
  uint32_t* w = out;
  for (uint32_t i = from; i < to; ++i) {
    *w = i;
    w += (data[i] >= lo) & (data[i] <= hi);
  }
  return static_cast<uint32_t>(w - out);
}

uint32_t ReduceMatchesBetweenF64(const double* data, const uint32_t* positions,
                                 uint32_t n, double lo, double hi,
                                 uint32_t* out) {
  uint32_t* w = out;
  for (uint32_t j = 0; j < n; ++j) {
    uint32_t p = positions[j];
    *w = p;
    w += (data[p] >= lo) & (data[p] <= hi);
  }
  return static_cast<uint32_t>(w - out);
}

uint32_t FindMatchesNeF64(const double* data, uint32_t from, uint32_t to,
                          double v, uint32_t* out) {
  uint32_t* w = out;
  for (uint32_t i = from; i < to; ++i) {
    *w = i;
    w += (data[i] != v);
  }
  return static_cast<uint32_t>(w - out);
}

uint32_t ReduceMatchesNeF64(const double* data, const uint32_t* positions,
                            uint32_t n, double v, uint32_t* out) {
  uint32_t* w = out;
  for (uint32_t j = 0; j < n; ++j) {
    uint32_t p = positions[j];
    *w = p;
    w += (data[p] != v);
  }
  return static_cast<uint32_t>(w - out);
}

// Explicit instantiations: unsigned widths for compressed codes, signed for
// raw (uncompressed) storage.
#define DB_INSTANTIATE_KERNELS(T)                                             \
  template uint32_t FindMatchesBetween<T>(const T*, uint32_t, uint32_t, T, T, \
                                          Isa, uint32_t*);                    \
  template uint32_t FindMatchesNe<T>(const T*, uint32_t, uint32_t, T, Isa,    \
                                     uint32_t*);                              \
  template uint32_t ReduceMatchesBetween<T>(const T*, const uint32_t*,        \
                                            uint32_t, T, T, Isa, uint32_t*);  \
  template uint32_t ReduceMatchesNe<T>(const T*, const uint32_t*, uint32_t,   \
                                       T, Isa, uint32_t*);

DB_INSTANTIATE_KERNELS(uint8_t)
DB_INSTANTIATE_KERNELS(uint16_t)
DB_INSTANTIATE_KERNELS(uint32_t)
DB_INSTANTIATE_KERNELS(uint64_t)
DB_INSTANTIATE_KERNELS(int32_t)
DB_INSTANTIATE_KERNELS(int64_t)

#undef DB_INSTANTIATE_KERNELS

}  // namespace datablocks
