#ifndef DATABLOCKS_SCAN_MATCH_FINDER_H_
#define DATABLOCKS_SCAN_MATCH_FINDER_H_

#include <cstdint>

namespace datablocks {

/// Instruction-set flavor of the predicate-evaluation kernels. The paper
/// compares scalar x86, SSE, and AVX2 implementations (Figures 8 and 9);
/// all three are selectable at run time.
enum class Isa : uint8_t { kScalar, kSse, kAvx2 };

/// Best ISA available on this CPU, detected at run time (util/cpu.h). The
/// library itself is compiled for baseline x86-64; the SIMD kernels carry
/// per-function `target` attributes and are only reached when the host
/// supports them. `DATABLOCKS_FORCE_SCALAR=1` in the environment forces
/// kScalar.
Isa BestIsa();

/// True if the host CPU can execute kernels of the given flavor (kAvx2 also
/// requires BMI2). Always true for kScalar.
bool IsaSupported(Isa isa);

/// Downgrades `isa` to the best flavor the host supports (kAvx2 -> kSse ->
/// kScalar). All public kernels clamp their `isa` argument with this, so an
/// unsupported request runs the fallback instead of faulting.
Isa ClampIsa(Isa isa);

const char* IsaName(Isa isa);

/// Finds the positions i in [from, to) with lo <= data[i] <= hi ("find
/// initial matches", Figure 7(a)). Writes absolute positions to `out` and
/// returns the match count. `data` must be readable up to
/// `to * sizeof(T) + kScanPadding` bytes; `out` must have room for
/// `to - from + 8` entries (SIMD stores may overshoot before the final count
/// is known).
///
/// Instantiated for uint8_t, uint16_t, uint32_t, uint64_t (compressed codes)
/// and int32_t, int64_t (raw storage).
template <typename T>
uint32_t FindMatchesBetween(const T* data, uint32_t from, uint32_t to, T lo,
                            T hi, Isa isa, uint32_t* out);

/// Finds positions with data[i] != v.
template <typename T>
uint32_t FindMatchesNe(const T* data, uint32_t from, uint32_t to, T v, Isa isa,
                       uint32_t* out);

/// Shrinks an existing match vector ("reduce matches", Figure 7(b)): keeps
/// the positions p in positions[0..n) with lo <= data[p] <= hi. `out` may
/// alias `positions` (in-place compaction). Returns the new count.
template <typename T>
uint32_t ReduceMatchesBetween(const T* data, const uint32_t* positions,
                              uint32_t n, T lo, T hi, Isa isa, uint32_t* out);

/// Shrinks a match vector keeping positions with data[p] != v.
template <typename T>
uint32_t ReduceMatchesNe(const T* data, const uint32_t* positions, uint32_t n,
                         T v, Isa isa, uint32_t* out);

/// Scalar double kernels (the paper's SIMD algorithms target integer data;
/// doubles fall back to scalar code, Section 4.2).
uint32_t FindMatchesBetweenF64(const double* data, uint32_t from, uint32_t to,
                               double lo, double hi, uint32_t* out);
uint32_t ReduceMatchesBetweenF64(const double* data, const uint32_t* positions,
                                 uint32_t n, double lo, double hi,
                                 uint32_t* out);
uint32_t FindMatchesNeF64(const double* data, uint32_t from, uint32_t to,
                          double v, uint32_t* out);
uint32_t ReduceMatchesNeF64(const double* data, const uint32_t* positions,
                            uint32_t n, double v, uint32_t* out);

}  // namespace datablocks

#endif  // DATABLOCKS_SCAN_MATCH_FINDER_H_
