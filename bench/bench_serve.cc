// Closed-loop serving macro-benchmark: N clients x mixed TPC-C + TPC-H
// at think time T, through the serving front end (serve/server.h) — the
// first scenario where the engine serves many callers at once instead
// of one bench main().
//
//   * Half the clients are OLTP (one TPC-C mixed transaction per
//     request, Priority::kOltp — urgent-submitted, jumps worker
//     queues); the rest are OLAP (TPC-H queries on a frozen Data
//     Blocks instance, Priority::kOlap, parallel pipelines at
//     --threads N).
//   * Closed loop: every client submits, waits for the response,
//     thinks T ms, repeats until the duration elapses — so offered
//     load adapts to service rate like a real connection pool.
//   * Reported: per-priority-class and per-client p50/p95/p99
//     end-to-end latency (submit -> response, queueing included),
//     throughput, and the admission counters (serve.* metrics land in
//     the --json metrics section).
//   * Before the loop, every TPC-H query in the set runs once through
//     the serving layer AND via direct RunQuery; the payloads must
//     match, and the combined FNV checksum is printed — the serve-path
//     twin of bench_table2_tpch's t1-vs-t4 CI guard (and it primes the
//     admission cost model).
//
// Usage: bench_serve [--quick] [--json out] [--threads N] [--clients N]
//                    [--duration-s S] [--think-ms T] [--max-running R]
//                    [--max-queued Q] [--timeout-ms X] [--saturate]
//
// --saturate shrinks admission (max_running 1, max_queued 4, 50 ms
// queue timeout, zero think time) so the run *must* produce rejections
// and queue timeouts — the serve-stress CI job runs it under TSan and
// ASan/UBSan and fails unless both counters moved and nothing hung.
//
// --chaos evicts the whole lineitem table to a block archive (lifecycle
// budget 0, background ticks keep re-evicting) and arms the
// lifecycle.reload failpoint at prob:0.1 for the closed loop: a tenth of
// archive reloads fail, so OLAP queries randomly hit storage errors and
// quarantined chunks while OLTP traffic is untouched. The run passes as
// long as the server stays up and requests keep completing — injected
// storage errors are expected and reported, not fatal. The
// fault-injection CI job runs it under both sanitizer legs.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "lifecycle/lifecycle_manager.h"
#include "serve/server.h"
#include "tpcc/tpcc_db.h"
#include "tpch/queries.h"
#include "util/failpoint.h"
#include "util/rng.h"
#include "util/timer.h"

#include "bench_common.h"

using namespace datablocks;

namespace {

/// Strips `--name v` / `--name=v` from argv; returns the last value.
const char* FlagValue(int* argc, char** argv, const char* name) {
  const size_t len = std::strlen(name);
  const char* value = nullptr;
  int w = 1;
  for (int r = 1; r < *argc; ++r) {
    if (std::strncmp(argv[r], name, len) == 0 && argv[r][len] == '=') {
      value = argv[r] + len + 1;
      continue;
    }
    if (std::strcmp(argv[r], name) == 0 && r + 1 < *argc) {
      value = argv[++r];
      continue;
    }
    argv[w++] = argv[r];
  }
  *argc = w;
  return value;
}

long FlagInt(int* argc, char** argv, const char* name, long fallback) {
  const char* v = FlagValue(argc, argv, name);
  if (v == nullptr) return fallback;
  char* end;
  long n = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || n < 0) {
    std::fprintf(stderr, "bad %s value: %s\n", name, v);
    std::exit(1);
  }
  return n;
}

bool FlagBool(int* argc, char** argv, const char* name) {
  int w = 1;
  bool found = false;
  for (int r = 1; r < *argc; ++r) {
    if (std::strcmp(argv[r], name) == 0) {
      found = true;
      continue;
    }
    argv[w++] = argv[r];
  }
  *argc = w;
  return found;
}

uint64_t Fnv1a(uint64_t h, const std::string& s) {
  for (char c : s) h = (h ^ uint8_t(c)) * 1099511628211ull;
  return h;
}

/// Exact percentile of a sample set (ns); sorts in place.
uint64_t PercentileNs(std::vector<uint64_t>& v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t idx = size_t(q / 100.0 * double(v.size()));
  if (idx >= v.size()) idx = v.size() - 1;
  return v[idx];
}

struct ClientStats {
  std::string name;
  serve::Priority priority;
  std::vector<uint64_t> latencies_ns;  // kOk responses only
  uint64_t ok = 0, rejected = 0, timed_out = 0, errors = 0, other = 0;

  void Count(const serve::Response& resp) {
    switch (resp.status) {
      case serve::Status::kOk:
        ++ok;
        latencies_ns.push_back(resp.total_ns);
        break;
      case serve::Status::kRejected: ++rejected; break;
      case serve::Status::kTimedOut: ++timed_out; break;
      case serve::Status::kError: ++errors; break;
      default: ++other; break;
    }
  }
};

uint64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Default().GetCounter(name)->Value();
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = BenchQuickMode(&argc, argv);
  BenchJsonMode(&argc, argv, quick);
  const unsigned threads = BenchThreadsFlag(&argc, argv);
  const bool saturate = FlagBool(&argc, argv, "--saturate");
  const bool chaos = FlagBool(&argc, argv, "--chaos");

  const long clients = FlagInt(&argc, argv, "--clients", quick ? 8 : 32);
  const double duration_s =
      double(FlagInt(&argc, argv, "--duration-s", quick ? 2 : 10));
  const long think_ms =
      FlagInt(&argc, argv, "--think-ms", saturate ? 0 : (quick ? 1 : 2));
  const long max_running =
      FlagInt(&argc, argv, "--max-running", saturate ? 1 : 0);
  const long max_queued =
      FlagInt(&argc, argv, "--max-queued", saturate ? 4 : 64);
  const long timeout_ms =
      FlagInt(&argc, argv, "--timeout-ms", saturate ? 50 : 0);

  tpcc::TpccConfig tpcc_cfg;
  tpcc_cfg.num_warehouses = quick ? 1 : 2;
  tpch::TpchConfig tpch_cfg;
  tpch_cfg.scale_factor = quick ? 0.02 : 0.1;
  const std::vector<int> query_set =
      quick ? std::vector<int>{1, 6, 12, 14}
            : std::vector<int>{1, 3, 6, 12, 14, 19};

  std::printf("loading TPC-C (%d warehouse%s) + TPC-H SF %.2f (frozen)...\n",
              tpcc_cfg.num_warehouses,
              tpcc_cfg.num_warehouses == 1 ? "" : "s",
              tpch_cfg.scale_factor);
  Timer load;
  tpcc::TpccDatabase oltp_db(tpcc_cfg);
  oltp_db.Load();
  auto olap_db = tpch::MakeTpch(tpch_cfg);
  olap_db->FreezeAll();
  std::printf("loaded in %.1f s\n\n", load.ElapsedSeconds());

  serve::ServerConfig server_cfg;
  server_cfg.admission.max_running = unsigned(max_running);
  server_cfg.admission.max_queued = size_t(max_queued);
  serve::Server server(server_cfg);

  // The OLTP lane: TPC-C transactions are single-threaded, so requests
  // serialize on one mutex — a global commit lock, the honest statement
  // of what the engine supports until snapshot-isolated writes land
  // (ROADMAP). The lock is INSIDE the handler: admission and scheduling
  // stay concurrent, execution serializes.
  std::mutex oltp_mu;
  Rng oltp_rng(7);
  server.RegisterHandler("tpcc.mixed", [&](std::string_view) {
    std::lock_guard<std::mutex> lock(oltp_mu);
    const int type = oltp_db.RunMixedTransaction(oltp_rng);
    return std::string(1, char('0' + type));
  });
  for (int q : query_set) {
    server.RegisterHandler(
        "tpch.q" + std::to_string(q), [&, q](std::string_view) {
          tpch::ScanOptions opt;
          opt.mode = ScanMode::kDataBlocksPsma;
          opt.ctx.threads = threads;
          return tpch::RunQuery(q, *olap_db, opt).ToString();
        });
  }

  // -- Serve-vs-direct equality + the t1-vs-tN checksum ---------------------
  {
    auto session = server.OpenSession("checksum", serve::Priority::kOlap);
    uint64_t checksum = 1469598103934665603ull;
    for (int q : query_set) {
      // Copy: Get() returns a reference into the temporary future's
      // shared state.
      const serve::Response resp =
          session->Call("tpch.q" + std::to_string(q)).Get();
      if (resp.status != serve::Status::kOk) {
        std::fprintf(stderr, "serve-layer Q%d failed: %s %s\n", q,
                     serve::StatusName(resp.status), resp.payload.c_str());
        return 1;
      }
      tpch::ScanOptions opt;
      opt.mode = ScanMode::kDataBlocksPsma;
      opt.ctx.threads = threads;
      const std::string direct =
          tpch::RunQuery(q, *olap_db, opt).ToString();
      if (resp.payload != direct) {
        std::fprintf(stderr,
                     "MISMATCH: Q%d through the serving layer differs from "
                     "the direct call\n",
                     q);
        return 1;
      }
      checksum = Fnv1a(checksum, resp.payload);
    }
    std::printf("serve-layer results match direct calls (%zu queries)\n",
                query_set.size());
    std::printf("result checksum: %016llx\n\n",
                (unsigned long long)checksum);
  }

  // -- Chaos mode: evicted lineitem + injected reload failures --------------
  std::unique_ptr<LifecycleManager> chaos_mgr;
  const char* chaos_archive = "/tmp/datablocks_bench_serve_chaos.dbar";
  if (chaos) {
    LifecycleConfig lc;
    lc.memory_budget_bytes = 0;  // background ticks keep lineitem evicted
    lc.quarantine_backoff = std::chrono::milliseconds(25);
    lc.quarantine_max_retries = 1u << 20;  // probe for the whole run
    lc.tick_interval = std::chrono::milliseconds(20);
    std::remove(chaos_archive);
    chaos_mgr = std::make_unique<LifecycleManager>(&olap_db->lineitem,
                                                   chaos_archive, lc);
    for (int i = 0; i < 5; ++i) chaos_mgr->Tick();
    chaos_mgr->Start();
    fail::FailpointRegistry::Instance().Arm("lifecycle.reload", "prob:0.1");
    std::printf(
        "chaos: lineitem evicted to the archive, lifecycle.reload armed at "
        "prob:0.1 — OLAP storage errors below are injected on purpose\n\n");
  }

  // -- Closed loop ----------------------------------------------------------
  const long oltp_clients = clients / 2;
  std::printf(
      "=== closed loop: %ld clients (%ld oltp + %ld olap), %.0f s, "
      "think %ld ms, max_running %u, max_queued %ld, timeout %ld ms ===\n",
      clients, oltp_clients, clients - oltp_clients, duration_s, think_ms,
      server.admission_config().max_running, max_queued, timeout_ms);

  std::vector<ClientStats> stats{size_t(clients)};
  std::vector<std::thread> workers;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(int64_t(duration_s * 1e3));
  for (long c = 0; c < clients; ++c) {
    const bool is_oltp = c < oltp_clients;
    ClientStats& cs = stats[size_t(c)];
    cs.priority =
        is_oltp ? serve::Priority::kOltp : serve::Priority::kOlap;
    cs.name = (is_oltp ? "oltp" : "olap") + std::to_string(c);
    workers.emplace_back([&, c, is_oltp] {
      ClientStats& my = stats[size_t(c)];
      auto session = server.OpenSession(my.name, my.priority);
      size_t next_query = size_t(c) % query_set.size();
      while (std::chrono::steady_clock::now() < deadline) {
        std::string verb;
        if (is_oltp) {
          verb = "tpcc.mixed";
        } else {
          verb = "tpch.q" + std::to_string(query_set[next_query]);
          next_query = (next_query + 1) % query_set.size();
        }
        my.Count(session
                     ->Call(std::move(verb), "", my.priority,
                            std::chrono::milliseconds(timeout_ms))
                     .Get());
        if (think_ms > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(think_ms));
        }
      }
      session->Close();
    });
  }
  Timer loop;
  for (auto& t : workers) t.join();
  const double elapsed = loop.ElapsedSeconds();

  // -- Report ---------------------------------------------------------------
  struct ClassAgg {
    std::vector<uint64_t> lat;
    uint64_t ok = 0, rejected = 0, timed_out = 0, errors = 0;
  };
  ClassAgg agg[serve::kNumPriorities];
  std::printf("\n%-10s %8s %8s %8s %8s %9s %9s %9s\n", "client", "ok", "rej",
              "timeout", "err", "p50 ms", "p95 ms", "p99 ms");
  for (ClientStats& cs : stats) {
    ClassAgg& a = agg[unsigned(cs.priority)];
    a.ok += cs.ok;
    a.rejected += cs.rejected;
    a.timed_out += cs.timed_out;
    a.errors += cs.errors;
    a.lat.insert(a.lat.end(), cs.latencies_ns.begin(),
                 cs.latencies_ns.end());
    std::vector<uint64_t> lat = cs.latencies_ns;
    std::printf("%-10s %8llu %8llu %8llu %8llu %9.2f %9.2f %9.2f\n",
                cs.name.c_str(), (unsigned long long)cs.ok,
                (unsigned long long)cs.rejected,
                (unsigned long long)cs.timed_out,
                (unsigned long long)cs.errors,
                double(PercentileNs(lat, 50)) / 1e6,
                double(PercentileNs(lat, 95)) / 1e6,
                double(PercentileNs(lat, 99)) / 1e6);
  }
  uint64_t total_errors = 0;
  std::printf("\n%-10s %10s %10s %9s %9s %9s %9s\n", "class", "ok", "req/s",
              "p50 ms", "p95 ms", "p99 ms", "refused");
  for (unsigned p = 0; p < serve::kNumPriorities; ++p) {
    ClassAgg& a = agg[p];
    total_errors += a.errors;
    if (a.ok + a.rejected + a.timed_out + a.errors == 0) continue;
    const double p50 = double(PercentileNs(a.lat, 50));
    const double p95 = double(PercentileNs(a.lat, 95));
    const double p99 = double(PercentileNs(a.lat, 99));
    const double rps = double(a.ok) / elapsed;
    const char* cls = serve::PriorityName(serve::Priority(p));
    std::printf("%-10s %10llu %10.1f %9.2f %9.2f %9.2f %9llu\n", cls,
                (unsigned long long)a.ok, rps, p50 / 1e6, p95 / 1e6,
                p99 / 1e6, (unsigned long long)(a.rejected + a.timed_out));
    const std::string bench_name = std::string("serve_") + cls;
    BenchJsonRecord(bench_name, "p50", p50, rps);
    BenchJsonRecord(bench_name, "p95", p95, rps);
    BenchJsonRecord(bench_name, "p99", p99, rps);
  }

  server.Shutdown();
  if (chaos) {
    // Disarm before the manager's destructor reloads every evicted block:
    // with the failpoint still live the restore pass itself would be hit.
    fail::FailpointRegistry::Instance().DisarmAll();
    chaos_mgr->Stop();
    chaos_mgr->ResetQuarantine();
    chaos_mgr.reset();
    std::remove(chaos_archive);
  }
  const uint64_t rejected = CounterValue("serve.rejected");
  const uint64_t timed_out = CounterValue("serve.timed_out");
  const uint64_t completed = CounterValue("serve.completed");
  const uint64_t storage_errors = CounterValue("serve.storage_errors");
  std::printf(
      "\nserve.* admission counters: submitted %llu, admitted %llu, "
      "rejected %llu, timed_out %llu, completed %llu, errors %llu, "
      "storage_errors %llu\n",
      (unsigned long long)CounterValue("serve.submitted"),
      (unsigned long long)CounterValue("serve.admitted"),
      (unsigned long long)rejected, (unsigned long long)timed_out,
      (unsigned long long)completed,
      (unsigned long long)CounterValue("serve.errors"),
      (unsigned long long)storage_errors);

  if (chaos) {
    std::printf(
        "chaos: %llu injected storage errors surfaced as per-query kError "
        "responses; %llu requests completed anyway\n",
        (unsigned long long)storage_errors, (unsigned long long)completed);
    if (completed == 0) {
      std::fprintf(stderr,
                   "FAIL: --chaos completed no requests — the injected "
                   "storage faults took the server down\n");
      return 1;
    }
  } else if (total_errors > 0) {
    std::fprintf(stderr, "FAIL: %llu handler errors\n",
                 (unsigned long long)total_errors);
    return 1;
  }
  if (saturate && rejected + timed_out == 0) {
    std::fprintf(stderr,
                 "FAIL: --saturate produced neither rejections nor queue "
                 "timeouts — admission control is not engaging\n");
    return 1;
  }
  std::string msg;
  if (!oltp_db.CheckConsistency(&msg)) {
    std::fprintf(stderr, "TPC-C CONSISTENCY VIOLATION: %s\n", msg.c_str());
    return 1;
  }
  std::printf("TPC-C consistency checks passed.\n");
  return 0;
}
