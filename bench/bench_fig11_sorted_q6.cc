// Figure 11: speedup of TPC-H Q6 when each lineitem Data Block is sorted on
// l_shipdate before freezing (+SORT), with and without PSMAs. Block-local
// clustering makes the PSMA ranges tight even though the relation as a
// whole still spans all dates.

#include <cstdio>
#include <cstdlib>

#include "tpch/queries.h"
#include "util/timer.h"

#include "bench_common.h"

using namespace datablocks;
using namespace datablocks::tpch;

namespace {

double Measure(const TpchDatabase& db, ScanMode mode, int reps = 3) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    QueryResult result = Q6(db, ScanOptions{.mode = mode});
    best = std::min(best, t.ElapsedSeconds());
    if (result.rows.empty()) std::abort();
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = BenchQuickMode(&argc, argv);
  TpchConfig cfg;
  cfg.scale_factor = argc > 1 ? atof(argv[1]) : (quick ? 0.02 : 0.5);

  std::printf("generating TPC-H SF %.2f twice (unsorted / block-sorted)...\n",
              cfg.scale_factor);
  auto hot = MakeTpch(cfg);
  double jit = Measure(*hot, ScanMode::kJit);
  double vec = Measure(*hot, ScanMode::kVectorizedSarg);
  hot->FreezeAll(/*sort_lineitem_by_shipdate=*/false);
  double datablocks_psma = Measure(*hot, ScanMode::kDataBlocksPsma);

  auto sorted = MakeTpch(cfg);
  sorted->FreezeAll(/*sort_lineitem_by_shipdate=*/true);
  double sort_no_psma = Measure(*sorted, ScanMode::kDataBlocks);
  double sort_psma = Measure(*sorted, ScanMode::kDataBlocksPsma);

  std::printf("\n=== Figure 11: TPC-H Q6 speedup over JIT scan (SF %.2f) "
              "===\n",
              cfg.scale_factor);
  std::printf("%-24s %10s %10s\n", "configuration", "runtime", "speedup");
  auto row = [&](const char* name, double secs) {
    std::printf("%-24s %8.1fms %9.1fx\n", name, secs * 1e3, jit / secs);
  };
  row("JIT (uncompressed)", jit);
  row("VEC (+SARG)", vec);
  row("Data Blocks (+PSMA)", datablocks_psma);
  row("+SORT (-PSMA)", sort_no_psma);
  row("+SORT (+PSMA)", sort_psma);
  std::printf("\ngain by PSMA on sorted blocks: %.1fx\n",
              sort_no_psma / sort_psma);
  return 0;
}
