// Appendix E ("Further optimizations") ablations:
//  (1) eager aggregation inside the vectorized scan vs. the tuple-at-a-time
//      pipeline hand-off, on the TPC-H Q6 shape;
//  (2) morsel-parallel scans (the mechanism behind the paper's
//      multi-threaded numbers) — scaling of Q6 with worker count;
//  (3) micro-adaptive early probing: the FlavorChooser picks between
//      "early probe in scan" and "probe in pipeline" per vector, which must
//      track the better flavor for both a selective and a non-selective
//      join build side.

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <thread>

#include "exec/eager_agg.h"
#include "exec/hash_table.h"
#include "exec/micro_adaptive.h"
#include "exec/parallel_scan.h"
#include "tpch/queries.h"
#include "util/date.h"
#include "util/timer.h"

#include "bench_common.h"

using namespace datablocks;
using namespace datablocks::tpch;

namespace li = datablocks::tpch::col::lineitem;
namespace ord = datablocks::tpch::col::orders;

namespace {

std::vector<Predicate> Q6Preds() {
  return {Predicate::Between(li::shipdate, Value::Int(MakeDate(1994, 1, 1)),
                             Value::Int(MakeDate(1994, 12, 31))),
          Predicate::Between(li::discount, Value::Int(5), Value::Int(7)),
          Predicate::Lt(li::quantity, Value::Int(24))};
}

double Best(int reps, const std::function<void()>& fn) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    best = std::min(best, t.ElapsedSeconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = BenchQuickMode(&argc, argv);
  TpchConfig cfg;
  cfg.scale_factor = argc > 1 ? atof(argv[1]) : (quick ? 0.02 : 0.3);
  std::printf("generating TPC-H SF %.2f (frozen)...\n", cfg.scale_factor);
  auto db = MakeTpch(cfg);
  db->FreezeAll();

  // --- (1) Eager aggregation --------------------------------------------
  int64_t pipeline_rev = 0, eager_rev = 0;
  double pipeline_s = Best(5, [&] {
    QueryResult r = Q6(*db, ScanOptions{});
    pipeline_rev = int64_t(atof(r.rows[0].c_str()) * 100);
  });
  double eager_s = Best(5, [&] {
    EagerAggResult r =
        EagerAggregate(db->lineitem, li::extendedprice, li::discount,
                       Q6Preds(), ScanMode::kDataBlocksPsma);
    eager_rev = r.sum_product / 100;
  });
  std::printf("\n=== (1) eager aggregation in the scan (Q6 shape) ===\n");
  std::printf("%-34s %10.2fms\n", "pipeline aggregation", pipeline_s * 1e3);
  std::printf("%-34s %10.2fms (%.2fx)\n", "eager (in-scan) aggregation",
              eager_s * 1e3, pipeline_s / eager_s);
  std::printf("revenue check: %s\n",
              std::llabs(pipeline_rev - eager_rev) <= 1 ? "identical"
                                                        : "MISMATCH");

  // --- (2) Morsel-parallel scan scaling -----------------------------------
  std::printf("\n=== (2) morsel-parallel Q6 aggregation ===\n");
  double base_s = 0;
  for (unsigned threads : {1u, 2u, 4u}) {
    double s = Best(3, [&] {
      auto states = ParallelScan<EagerAggResult>(
          db->lineitem, {li::extendedprice, li::discount}, Q6Preds(),
          ScanMode::kDataBlocksPsma, threads,
          [] { return EagerAggResult{}; },
          [](EagerAggResult& st, const Batch& b) {
            for (uint32_t i = 0; i < b.count; ++i)
              st.sum_product += b.cols[0].i64[i] * b.cols[1].i32[i];
          });
      int64_t total = 0;
      for (auto& st : states) total += st.sum_product;
      if (total / 100 != eager_rev) std::abort();
    });
    if (threads == 1) base_s = s;
    std::printf("%u thread(s): %8.2fms (%.2fx)\n", threads, s * 1e3,
                base_s / s);
  }

  // --- (3) Micro-adaptive early probing -----------------------------------
  std::printf("\n=== (3) micro-adaptive early join probing ===\n");
  for (int wide_build : {0, 1}) {
    JoinHashTable ht(size_t(db->NumOrders()));
    int32_t hi_date = wide_build ? MakeDate(1998, 12, 31)
                                 : MakeDate(1994, 3, 31);
    TableScanner build(db->orders, {ord::orderkey},
                       {Predicate::Between(ord::orderdate,
                                           Value::Int(MakeDate(1994, 1, 1)),
                                           Value::Int(hi_date))},
                       ScanMode::kDataBlocksPsma);
    Batch bb;
    while (build.Next(&bb))
      for (uint32_t i = 0; i < bb.count; ++i)
        ht.Insert(uint64_t(bb.cols[0].i64[i]), 1);

    // Adaptive loop over manually driven block scans. Flavor 0 unpacks the
    // payload columns for every tuple and probes in the pipeline; flavor 1
    // early-probes the key vector first and only unpacks survivors
    // (Figure 14 steps 1-4). Early probing pays off iff the join is
    // selective — exactly what the chooser has to discover.
    FlavorChooser chooser(2);
    uint64_t flavor_calls[2] = {0, 0};
    int64_t joined = 0;
    std::vector<uint32_t> positions(8192 + 8);
    std::vector<uint64_t> keys(8192);
    for (size_t c = 0; c < db->lineitem.num_chunks(); ++c) {
      const DataBlock* block = db->lineitem.frozen_block(c);
      if (block == nullptr) continue;
      for (uint32_t from = 0; from < block->num_rows(); from += 8192) {
        uint32_t to = std::min(from + 8192u, block->num_rows());
        uint32_t n = to - from;
        for (uint32_t i = 0; i < n; ++i) positions[i] = from + i;
        uint32_t flavor = chooser.Choose();
        ++flavor_calls[flavor];
        uint64_t t0 = ReadTsc();
        ColumnVector key_col;
        key_col.Init(TypeId::kInt64);
        UnpackColumn(*block, li::orderkey, positions.data(), n, &key_col);
        uint32_t kept = n;
        if (flavor == 1) {
          for (uint32_t i = 0; i < n; ++i)
            keys[i] = uint64_t(key_col.i64[i]);
          kept = ht.EarlyProbe(keys.data(), positions.data(), n,
                               positions.data());
          key_col.Init(TypeId::kInt64);
          UnpackColumn(*block, li::orderkey, positions.data(), kept,
                       &key_col);
        }
        ColumnVector price, disc, tax, ship;
        price.Init(TypeId::kInt64);
        disc.Init(TypeId::kInt32);
        tax.Init(TypeId::kInt32);
        ship.Init(TypeId::kDate);
        UnpackColumn(*block, li::extendedprice, positions.data(), kept,
                     &price);
        UnpackColumn(*block, li::discount, positions.data(), kept, &disc);
        UnpackColumn(*block, li::tax, positions.data(), kept, &tax);
        UnpackColumn(*block, li::shipdate, positions.data(), kept, &ship);
        for (uint32_t i = 0; i < kept; ++i) {
          ht.Probe(uint64_t(key_col.i64[i]), [&](uint64_t) {
            joined += price.i64[i] * (100 - disc.i32[i]) + tax.i32[i] +
                      ship.i32[i];
          });
        }
        chooser.Report(flavor, double(ReadTsc() - t0) / n);
      }
    }
    std::printf(
        "build side %-10s -> winner: %-18s (pipeline %llu / early %llu "
        "vectors; joined=%lld)\n",
        wide_build ? "all years" : "one quarter",
        chooser.Best() == 1 ? "early probe" : "probe in pipeline",
        (unsigned long long)flavor_calls[0],
        (unsigned long long)flavor_calls[1], (long long)joined);
  }
  std::printf(
      "\n(Expected: the selective build side favors early probing; the\n"
      " all-years build side makes early probing pure overhead, and the\n"
      " adaptive chooser must flip accordingly — Appendix E.)\n");
  return 0;
}
