// Section 5.2 flights query (Appendix D): carriers and their average
// arrival delay into SFO for 1998-2008, on naturally date-ordered data.
// The paper reports >20x over a JIT scan of uncompressed storage thanks to
// SMA block skipping plus PSMA range narrowing.

#include <cstdio>
#include <cstdlib>

#include "util/timer.h"
#include "workloads/flights.h"

#include "bench_common.h"

using namespace datablocks;
using namespace datablocks::workloads;

namespace {

double Measure(const Table& t, ScanMode mode, size_t* result_size,
               int reps = 3) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    Timer timer;
    auto result = RunFlightsQuery(t, mode);
    best = std::min(best, timer.ElapsedSeconds());
    *result_size = result.size();
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = BenchQuickMode(&argc, argv);
  FlightsConfig cfg;
  cfg.num_rows =
      argc > 1 ? uint64_t(atoll(argv[1])) : (quick ? 150'000 : 4'000'000);

  std::printf("generating %llu flights (1987-10 .. 2008-04)...\n",
              (unsigned long long)cfg.num_rows);
  auto flights = MakeFlights(cfg);

  size_t nrows = 0;
  double jit = Measure(*flights, ScanMode::kJit, &nrows);
  double vec = Measure(*flights, ScanMode::kVectorizedSarg, &nrows);
  uint64_t hot_bytes = flights->MemoryBytes();
  flights->FreezeAll();

  double decompress_all = Measure(*flights, ScanMode::kDecompressAll, &nrows);
  double sma = Measure(*flights, ScanMode::kDataBlocks, &nrows);
  double psma = Measure(*flights, ScanMode::kDataBlocksPsma, &nrows);

  // "If workload knowledge exists ..., Data Blocks can be frozen based on a
  // sort criterion to improve accuracy of PSMAs" (Section 3.2): cluster each
  // block on the destination airport. Cross-block date ranges are untouched
  // (freezing sorts within blocks), so SMA skipping still works.
  auto clustered = MakeFlights(cfg);
  clustered->FreezeAll(int(flights_col::dest));
  double sorted_psma = Measure(*clustered, ScanMode::kDataBlocksPsma, &nrows);

  // Count skipped blocks for the report.
  TableScanner probe(*flights, {flights_col::arrdelay},
                     {Predicate::Between(flights_col::year, Value::Int(1998),
                                         Value::Int(2008)),
                      Predicate::Eq(flights_col::dest, Value::Str("SFO"))},
                     ScanMode::kDataBlocksPsma);
  Batch b;
  while (probe.Next(&b)) {
  }

  std::printf("\n=== Section 5.2: flights query (Appendix D) ===\n");
  std::printf("compression: %.1f MB -> %.1f MB (%.2fx); %llu/%zu blocks "
              "skipped by SMAs\n\n",
              double(hot_bytes) / 1e6, double(flights->MemoryBytes()) / 1e6,
              double(hot_bytes) / double(flights->MemoryBytes()),
              (unsigned long long)probe.chunks_skipped(),
              flights->num_chunks());
  std::printf("%-30s %10s %10s\n", "scan", "time", "speedup");
  auto row = [&](const char* name, double secs) {
    std::printf("%-30s %8.1fms %9.1fx\n", name, secs * 1e3, jit / secs);
  };
  row("JIT (uncompressed)", jit);
  row("Vectorized+SARG (uncompr.)", vec);
  row("DecompressAll (blocks)", decompress_all);
  row("Data Blocks +SARG/SMA", sma);
  row("Data Blocks +PSMA", psma);
  row("+SORT(dest) +PSMA", sorted_psma);
  std::printf("\n(%zu carrier groups; paper reports >20x for +PSMA vs JIT)\n",
              nrows);
  return 0;
}
