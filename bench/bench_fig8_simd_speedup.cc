// Figure 8: speedup of SIMD predicate evaluation (l <= A <= r, selectivity
// 20%) over scalar x86 code, by data type width, for x86 / SSE / AVX2.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <random>
#include <vector>

#include "scan/match_finder.h"
#include "util/aligned_buffer.h"
#include "util/timer.h"

#include "bench_common.h"

namespace datablocks {
namespace {

constexpr uint32_t kN = 1u << 22;

template <typename T>
struct Fixture {
  std::vector<T> data;
  std::vector<uint32_t> out;
  T lo, hi;

  Fixture() {
    std::mt19937_64 rng(sizeof(T));
    data.resize(kN + kScanPadding);
    for (uint32_t i = 0; i < kN; ++i) data[i] = T(rng());
    // 20% selectivity on a uniform full-domain distribution.
    lo = T(0);
    hi = T(std::numeric_limits<T>::max() / 5);
    out.resize(kN + 8);
  }
};

template <typename T>
void BM_FindBetween(benchmark::State& state) {
  static Fixture<T> fx;
  Isa isa = Isa(state.range(0));
  if (!IsaSupported(isa)) {
    // The kernels would silently clamp to a lower flavor; skipping keeps the
    // figure honest instead of mislabeling a fallback measurement.
    state.SkipWithError("ISA not supported on this host");
    return;
  }
  uint64_t matches = 0;
  uint64_t cycles = 0;
  for (auto _ : state) {
    uint64_t t0 = ReadTsc();
    uint32_t n = FindMatchesBetween<T>(fx.data.data(), 0, kN, fx.lo, fx.hi,
                                       isa, fx.out.data());
    cycles += ReadTsc() - t0;
    matches += n;
    benchmark::DoNotOptimize(fx.out.data());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * kN);
  state.counters["cycles/elem"] =
      double(cycles) / double(state.iterations()) / kN;
  state.counters["sel%"] =
      100.0 * double(matches) / double(state.iterations()) / kN;
  state.SetLabel(IsaName(isa));
}

BENCHMARK_TEMPLATE(BM_FindBetween, uint8_t)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK_TEMPLATE(BM_FindBetween, uint16_t)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK_TEMPLATE(BM_FindBetween, uint32_t)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK_TEMPLATE(BM_FindBetween, uint64_t)->Arg(0)->Arg(1)->Arg(2);

template <typename T>
double MeasureMedianSeconds(Isa isa, Fixture<T>& fx) {
  // Warm-up rep included; the median of 5 is robust against one-off stalls.
  std::vector<double> samples;
  for (int rep = 0; rep < 5; ++rep) {
    Timer t;
    uint32_t n = FindMatchesBetween<T>(fx.data.data(), 0, kN, fx.lo, fx.hi,
                                       isa, fx.out.data());
    benchmark::DoNotOptimize(n);
    samples.push_back(t.ElapsedSeconds());
  }
  return BenchMedian(samples);
}

template <typename T>
void PrintRow(const char* name) {
  Fixture<T> fx;
  double scalar = MeasureMedianSeconds<T>(Isa::kScalar, fx);
  BenchJsonRecord(std::string("fig8_between_") + name, IsaName(Isa::kScalar),
                  scalar * 1e9 / kN, kN / scalar);
  std::printf("%-8s %10.2f", name, 1.0);
  for (Isa isa : {Isa::kSse, Isa::kAvx2}) {
    if (IsaSupported(isa)) {
      double secs = MeasureMedianSeconds<T>(isa, fx);
      BenchJsonRecord(std::string("fig8_between_") + name, IsaName(isa),
                      secs * 1e9 / kN, kN / secs);
      std::printf(" %10.2f", scalar / secs);
    } else {
      std::printf(" %10s", "n/a");
    }
  }
  std::printf("\n");
}

void PrintSummary() {
  std::printf(
      "\n=== Figure 8: speedup over scalar x86 (between, sel 20%%) ===\n");
  std::printf("%-8s %10s %10s %10s\n", "width", "x86", "SSE", "AVX2");
  PrintRow<uint8_t>("8-bit");
  PrintRow<uint16_t>("16-bit");
  PrintRow<uint32_t>("32-bit");
  PrintRow<uint64_t>("64-bit");
}

}  // namespace
}  // namespace datablocks

int main(int argc, char** argv) {
  const bool quick = BenchQuickMode(&argc, argv);
  BenchJsonMode(&argc, argv, quick);
  std::vector<char*> args = QuickBenchArgs(argc, argv, quick);
  int argn = int(args.size()) - 1;
  benchmark::Initialize(&argn, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  datablocks::PrintSummary();
  return 0;
}
