// Figure 9: cost (cycles per element) of applying an *additional*
// restriction ("reduce matches") as a function of the first predicate's
// selectivity; second predicate selectivity fixed at 40%; scalar x86 vs
// AVX2; 8/16/32/64-bit data.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <random>
#include <vector>

#include "scan/match_finder.h"
#include "util/aligned_buffer.h"
#include "util/timer.h"

#include "bench_common.h"

namespace datablocks {
namespace {

constexpr uint32_t kN = 16384;  // "the number of tuples processed at a time
                                // (which is set to 16 K in this experiment)"

template <typename T>
struct Fixture {
  std::vector<T> data;
  std::vector<uint32_t> positions;  // matches of the first predicate
  std::vector<uint32_t> out;
  uint32_t n_pos;
  T lo, hi;  // second predicate, 40% selective

  explicit Fixture(int first_sel_pct) {
    std::mt19937_64 rng(uint64_t(first_sel_pct) * 31 + sizeof(T));
    data.resize(kN + kScanPadding);
    for (uint32_t i = 0; i < kN; ++i) data[i] = T(rng() % 1000);
    positions.reserve(kN + 8);
    // First predicate: keep each position with probability sel (uniformly
    // distributed matches, as in the paper's experiment).
    for (uint32_t i = 0; i < kN; ++i)
      if (int64_t(rng() % 100) < first_sel_pct) positions.push_back(i);
    positions.resize(positions.size() + 8);
    n_pos = uint32_t(positions.size() - 8);
    lo = T(0);
    hi = T(399);  // values uniform in [0,999] -> 40%
    out.resize(kN + 8);
  }
};

template <typename T>
void BM_ReduceMatches(benchmark::State& state) {
  Fixture<T> fx(int(state.range(1)));
  Isa isa = Isa(state.range(0));
  if (!IsaSupported(isa)) {
    // The kernels would silently clamp to a lower flavor; skipping keeps the
    // figure honest instead of mislabeling a fallback measurement.
    state.SkipWithError("ISA not supported on this host");
    return;
  }
  uint64_t cycles = 0;
  for (auto _ : state) {
    uint64_t t0 = ReadTsc();
    uint32_t n = ReduceMatchesBetween<T>(fx.data.data(), fx.positions.data(),
                                         fx.n_pos, fx.lo, fx.hi, isa,
                                         fx.out.data());
    cycles += ReadTsc() - t0;
    benchmark::DoNotOptimize(n);
  }
  // Normalized per *element of the vector*, like the paper's y axis.
  state.counters["cycles/elem"] =
      double(cycles) / double(state.iterations()) / kN;
  state.SetLabel(std::string(IsaName(isa)) + " sel1=" +
                 std::to_string(state.range(1)) + "%");
}

#define ARGS                                                         \
  ->Args({0, 1})->Args({0, 5})->Args({0, 10})->Args({0, 25})         \
      ->Args({0, 50})->Args({0, 75})->Args({0, 100})->Args({2, 1})   \
      ->Args({2, 5})->Args({2, 10})->Args({2, 25})->Args({2, 50})    \
      ->Args({2, 75})->Args({2, 100})

BENCHMARK_TEMPLATE(BM_ReduceMatches, uint8_t) ARGS;
BENCHMARK_TEMPLATE(BM_ReduceMatches, uint16_t) ARGS;
BENCHMARK_TEMPLATE(BM_ReduceMatches, uint32_t) ARGS;
BENCHMARK_TEMPLATE(BM_ReduceMatches, uint64_t) ARGS;

template <typename T>
void PrintSeries(const char* name) {
  std::printf("%s:\n  sel1%%:", name);
  static const int kSels[] = {1, 5, 10, 25, 50, 75, 100};
  for (int s : kSels) std::printf("%8d", s);
  for (Isa isa : {Isa::kScalar, Isa::kAvx2}) {
    if (!IsaSupported(isa)) {
      std::printf("\n  %-5s: n/a (not supported on this host)", IsaName(isa));
      continue;
    }
    std::printf("\n  %-5s:", IsaName(isa));
    for (int s : kSels) {
      Fixture<T> fx(s);
      uint64_t best = UINT64_MAX;
      std::vector<double> secs;
      for (int rep = 0; rep < 20; ++rep) {
        Timer t;
        uint64_t t0 = ReadTsc();
        uint32_t n = ReduceMatchesBetween<T>(fx.data.data(),
                                             fx.positions.data(), fx.n_pos,
                                             fx.lo, fx.hi, isa,
                                             fx.out.data());
        best = std::min(best, ReadTsc() - t0);
        secs.push_back(t.ElapsedSeconds());
        benchmark::DoNotOptimize(n);
      }
      double med = BenchMedian(secs);
      BenchJsonRecord(std::string("fig9_reduce_") + name + "_sel" +
                          std::to_string(s),
                      IsaName(isa), med * 1e9 / kN, kN / med);
      std::printf("%8.2f", double(best) / kN);
    }
  }
  std::printf("\n");
}

void PrintSummary() {
  std::printf(
      "\n=== Figure 9: reduce-matches cycles/element vs selectivity of the "
      "first predicate (2nd pred 40%%) ===\n");
  PrintSeries<uint8_t>("8-bit");
  PrintSeries<uint16_t>("16-bit");
  PrintSeries<uint32_t>("32-bit");
  PrintSeries<uint64_t>("64-bit");
}

}  // namespace
}  // namespace datablocks

int main(int argc, char** argv) {
  const bool quick = BenchQuickMode(&argc, argv);
  BenchJsonMode(&argc, argv, quick);
  std::vector<char*> args = QuickBenchArgs(argc, argv, quick);
  int argn = int(args.size()) - 1;
  benchmark::Initialize(&argn, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  datablocks::PrintSummary();
  return 0;
}
