// Figure 10: compression ratio as a function of records per Data Block
// (2^11 .. 2^16) for TPC-H, IMDB cast_info, and the flights data set.
// Small blocks waste space on per-block metadata (dictionaries, SMAs,
// PSMAs); large blocks amortize it.

#include <cstdio>
#include <cstdlib>

#include "tpch/tpch_db.h"
#include "workloads/flights.h"
#include "workloads/imdb.h"

#include "bench_common.h"

using namespace datablocks;

namespace {

double TpchRatio(double sf, uint32_t records) {
  tpch::TpchConfig cfg;
  cfg.scale_factor = sf;
  cfg.chunk_capacity = records;
  auto db = tpch::MakeTpch(cfg);
  uint64_t hot = db->TotalBytes();
  db->FreezeAll();
  return double(hot) / double(db->TotalBytes());
}

double ImdbRatio(uint64_t rows, uint32_t records) {
  workloads::ImdbConfig cfg;
  cfg.num_rows = rows;
  cfg.chunk_capacity = records;
  auto t = workloads::MakeCastInfo(cfg);
  uint64_t hot = t->MemoryBytes();
  t->FreezeAll();
  return double(hot) / double(t->MemoryBytes());
}

double FlightsRatio(uint64_t rows, uint32_t records) {
  workloads::FlightsConfig cfg;
  cfg.num_rows = rows;
  cfg.chunk_capacity = records;
  auto t = workloads::MakeFlights(cfg);
  uint64_t hot = t->MemoryBytes();
  t->FreezeAll();
  return double(hot) / double(t->MemoryBytes());
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = BenchQuickMode(&argc, argv);
  double sf = argc > 1 ? atof(argv[1]) : (quick ? 0.005 : 0.05);
  uint64_t rows = uint64_t(1'000'000 * sf * 10);

  std::printf(
      "=== Figure 10: compression ratio vs records per Data Block ===\n");
  std::printf("%-10s %10s %10s %10s\n", "records", "TPC-H", "IMDB",
              "Flights");
  for (uint32_t records = 2048; records <= 65536; records *= 2) {
    std::printf("%-10u %9.2fx %9.2fx %9.2fx\n", records,
                TpchRatio(sf, records), ImdbRatio(rows, records),
                FlightsRatio(rows, records));
  }
  std::printf(
      "\n(Ratios grow with block size as per-block dictionaries/SMAs/PSMAs\n"
      " amortize — the Figure 10 shape; 2^16 records is the default.)\n");
  return 0;
}
