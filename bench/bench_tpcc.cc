// Section 5.3: TPC-C experiments.
//  (1) Mixed workload (45/43/4/4/4) on fully uncompressed storage vs. a
//      database whose cold neworder records are frozen into Data Blocks.
//  (2) Read-only transactions (OrderStatus + StockLevel) on uncompressed
//      storage vs. a database stored entirely in Data Blocks.

#include <cstdio>
#include <cstdlib>

#include "tpcc/tpcc_db.h"
#include "util/timer.h"

#include "bench_common.h"

using namespace datablocks;
using namespace datablocks::tpcc;

namespace {

double MixedTps(TpccDatabase& db, int txns, uint64_t seed) {
  Rng rng(seed);
  // Warm up.
  for (int i = 0; i < txns / 10; ++i) db.RunMixedTransaction(rng);
  Timer t;
  for (int i = 0; i < txns; ++i) db.RunMixedTransaction(rng);
  return txns / t.ElapsedSeconds();
}

double ReadOnlyTps(TpccDatabase& db, int txns, uint64_t seed) {
  Rng rng(seed);
  Timer t;
  for (int i = 0; i < txns; ++i) {
    if (i % 2 == 0)
      db.OrderStatus(rng);
    else
      db.StockLevel(rng);
  }
  return txns / t.ElapsedSeconds();
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = BenchQuickMode(&argc, argv);
  TpccConfig cfg;
  cfg.num_warehouses = argc > 1 ? atoi(argv[1]) : (quick ? 1 : 5);
  const int txns = argc > 2 ? atoi(argv[2]) : (quick ? 2000 : 200000);

  std::printf("loading TPC-C with %d warehouses (x2 instances)...\n",
              cfg.num_warehouses);
  Timer load;
  TpccDatabase uncompressed(cfg);
  uncompressed.Load();
  TpccDatabase frozen_no(cfg);
  frozen_no.Load();
  std::printf("loaded in %.1f s (%llu order lines each)\n\n",
              load.ElapsedSeconds(),
              (unsigned long long)uncompressed.orderline.num_rows());

  std::printf("=== Section 5.3 (1): mixed workload, cold neworders frozen "
              "===\n");
  double tps_hot = MixedTps(uncompressed, txns, 1);
  frozen_no.FreezeOldNewOrders();
  double tps_frozen = MixedTps(frozen_no, txns, 1);
  std::printf("%-38s %12.0f txn/s\n", "uncompressed storage", tps_hot);
  std::printf("%-38s %12.0f txn/s (%.1f%% overhead)\n",
              "cold neworder records in Data Blocks", tps_frozen,
              100.0 * (tps_hot - tps_frozen) / tps_hot);

  std::printf("\n=== Section 5.3 (2): read-only transactions, full DB in "
              "Data Blocks ===\n");
  TpccDatabase ro_hot(cfg);
  ro_hot.Load();
  TpccDatabase ro_frozen(cfg);
  ro_frozen.Load();
  ro_frozen.FreezeEverything();
  double ro_tps_hot = ReadOnlyTps(ro_hot, txns / 2, 2);
  double ro_tps_frozen = ReadOnlyTps(ro_frozen, txns / 2, 2);
  std::printf("%-38s %12.0f txn/s\n", "uncompressed storage", ro_tps_hot);
  std::printf("%-38s %12.0f txn/s (%.1f%% overhead)\n",
              "entire database in Data Blocks", ro_tps_frozen,
              100.0 * (ro_tps_hot - ro_tps_frozen) / ro_tps_hot);

  uint64_t hot_bytes = ro_hot.customer.MemoryBytes() +
                       ro_hot.orderline.MemoryBytes() +
                       ro_hot.stock.MemoryBytes() +
                       ro_hot.order.MemoryBytes() +
                       ro_hot.history.MemoryBytes() +
                       ro_hot.item.MemoryBytes();
  uint64_t frz_bytes = ro_frozen.customer.MemoryBytes() +
                       ro_frozen.orderline.MemoryBytes() +
                       ro_frozen.stock.MemoryBytes() +
                       ro_frozen.order.MemoryBytes() +
                       ro_frozen.history.MemoryBytes() +
                       ro_frozen.item.MemoryBytes();
  std::printf("\nTPC-C compression: %.1f MB -> %.1f MB (%.2fx)\n",
              double(hot_bytes) / 1e6, double(frz_bytes) / 1e6,
              double(hot_bytes) / double(frz_bytes));

  std::string msg;
  if (!uncompressed.CheckConsistency(&msg) ||
      !frozen_no.CheckConsistency(&msg)) {
    std::printf("CONSISTENCY VIOLATION: %s\n", msg.c_str());
    return 1;
  }
  std::printf("consistency checks passed.\n");
  return 0;
}
