#ifndef DATABLOCKS_BENCH_BENCH_COMMON_H_
#define DATABLOCKS_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "exec/partitioned_agg.h"
#include "obs/metrics.h"

// Shared flag handling for the bench binaries. Every benchmark accepts
// `--quick` (anywhere on the command line): workloads shrink to smoke-test
// sizes so CI can launch each binary and catch bit-rot. Quick-mode numbers
// are NOT meaningful reproductions of the paper's figures.
//
// BenchQuickMode strips `--quick` from argv so positional arguments keep
// working (e.g. `bench_table2_tpch --quick 0.01 1`).
inline bool BenchQuickMode(int* argc, char** argv) {
  bool quick = false;
  int w = 1;
  for (int r = 1; r < *argc; ++r) {
    if (std::strcmp(argv[r], "--quick") == 0) {
      quick = true;
      continue;
    }
    argv[w++] = argv[r];
  }
  *argc = w;
  if (quick) {
    std::printf(
        "[--quick] smoke-test sizes; timings are not paper-comparable\n");
  }
  return quick;
}

// Argv for google-benchmark binaries: in quick mode a tiny
// --benchmark_min_time is spliced in so every registered benchmark still
// runs, just briefly. Pass `args.size() - 1` (the trailing nullptr) as argc
// to benchmark::Initialize.
inline std::vector<char*> QuickBenchArgs(int argc, char** argv, bool quick) {
  static char min_time[] = "--benchmark_min_time=0.005";
  std::vector<char*> args(argv, argv + argc);
  if (quick) args.insert(args.begin() + 1, min_time);
  args.push_back(nullptr);
  return args;
}

// ---------------------------------------------------------------------------
// --json <path>: machine-readable results for the CI perf-regression
// harness. The curated benches (fig8, fig9, table2, table3) record one
// entry per (name, config) measurement; tools/bench_compare.py diffs two
// such files and flags >threshold regressions. Human-readable stdout output
// is unchanged — the JSON file is written on top of it, at process exit.
// ---------------------------------------------------------------------------

struct BenchJsonEntry {
  std::string name;       // what was measured, e.g. "tpch_q6"
  std::string config;     // variant, e.g. "+PSMA" or "AVX2"
  double median_ns_op;    // median nanoseconds per operation
  double rows_per_s;      // throughput (rows, tuples or lookups per second)
  // Peak aggregation-state bytes held by the partitioned-aggregation
  // engine during the measurement (exec/partitioned_agg.h accounting);
  // < 0 = not recorded. Makes the O(rows) dense-state guarantee visible
  // in the perf artifacts.
  double state_peak_bytes = -1;
};

struct BenchJsonState {
  std::string path;
  std::string bench;
  bool quick = false;
  unsigned threads = 1;  // recorded by BenchThreadsFlag
  unsigned shards = 1;   // recorded by BenchShardsFlag
  std::vector<BenchJsonEntry> entries;
};

inline BenchJsonState& BenchJson() {
  static BenchJsonState state;
  return state;
}

inline void BenchJsonFlush() {
  BenchJsonState& s = BenchJson();
  if (s.path.empty()) return;
  std::FILE* f = std::fopen(s.path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", s.path.c_str());
    std::exit(1);
  }
  auto escape = [](const std::string& in) {
    std::string out;
    for (char c : in) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  };
  std::fprintf(f,
               "{\n  \"bench\": \"%s\",\n  \"quick\": %s,\n"
               "  \"threads\": %u,\n  \"shards\": %u,\n  \"results\": [",
               escape(s.bench).c_str(), s.quick ? "true" : "false",
               s.threads, s.shards);
  for (size_t i = 0; i < s.entries.size(); ++i) {
    const BenchJsonEntry& e = s.entries[i];
    std::fprintf(f,
                 "%s\n    {\"name\": \"%s\", \"config\": \"%s\", "
                 "\"median_ns_op\": %.6g, \"rows_per_s\": %.6g",
                 i == 0 ? "" : ",", escape(e.name).c_str(),
                 escape(e.config).c_str(), e.median_ns_op, e.rows_per_s);
    if (e.state_peak_bytes >= 0) {
      std::fprintf(f, ", \"state_peak_bytes\": %.6g", e.state_peak_bytes);
    }
    std::fprintf(f, "}");
  }
  // Process-wide metrics snapshot (obs/metrics.h). RegisterEngineMetrics
  // pre-registers every engine metric so the section has a stable set of
  // names (untouched ones read 0); the aggregation-state gauges are
  // exported here since they are pull-based.
  datablocks::obs::RegisterEngineMetrics();
  datablocks::aggstate::ExportGauges();
  std::fprintf(f, "\n  ],\n  \"metrics\": %s\n}\n",
               datablocks::obs::MetricsRegistry::Default().ToJson().c_str());
  std::fclose(f);
  std::printf("[--json] wrote %zu results to %s\n", s.entries.size(),
              s.path.c_str());
}

/// Parses and strips `--json <path>` (or `--json=<path>`) from argv.
/// Returns true when JSON output is enabled; the file is written at process
/// exit. `quick` is recorded so the comparer can refuse to diff quick-mode
/// numbers against full-mode numbers.
inline bool BenchJsonMode(int* argc, char** argv, bool quick) {
  BenchJsonState& s = BenchJson();
  int w = 1;
  for (int r = 1; r < *argc; ++r) {
    if (std::strcmp(argv[r], "--json") == 0 && r + 1 < *argc) {
      s.path = argv[++r];
      continue;
    }
    if (std::strncmp(argv[r], "--json=", 7) == 0) {
      s.path = argv[r] + 7;
      continue;
    }
    argv[w++] = argv[r];
  }
  *argc = w;
  if (s.path.empty()) return false;
  const char* base = std::strrchr(argv[0], '/');
  s.bench = base != nullptr ? base + 1 : argv[0];
  s.quick = quick;
  // Construct the registry static BEFORE registering the exit handler:
  // function-local statics are destroyed in reverse construction order
  // interleaved with atexit callbacks, so a registry first touched during
  // the run would be torn down before the flush that reads it.
  datablocks::obs::RegisterEngineMetrics();
  std::atexit(BenchJsonFlush);
  return true;
}

inline void BenchJsonRecord(std::string name, std::string config,
                            double median_ns_op, double rows_per_s,
                            double state_peak_bytes = -1) {
  BenchJsonState& s = BenchJson();
  if (s.path.empty()) return;
  s.entries.push_back(BenchJsonEntry{std::move(name), std::move(config),
                                     median_ns_op, rows_per_s,
                                     state_peak_bytes});
}

// ---------------------------------------------------------------------------
// --profile: per-query execution profiles (obs/query_profile.h). Benches
// that support it attach a fresh QueryProfile to every measured run and
// print an EXPLAIN-ANALYZE-style report for the most interesting config.
// `--profile-json <path>` additionally collects one profile JSON object
// per (name, config) — the last measured repetition — into a single file
// for tools/profile_report.py (which also validates the schema in CI).
// ---------------------------------------------------------------------------

struct BenchProfileState {
  bool enabled = false;
  std::string bench;
  std::string json_path;
  std::vector<std::string> profiles;  // QueryProfile::ToJson() objects
};

inline BenchProfileState& BenchProfile() {
  static BenchProfileState state;
  return state;
}

inline void BenchProfileFlush() {
  BenchProfileState& s = BenchProfile();
  if (s.json_path.empty()) return;
  std::FILE* f = std::fopen(s.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", s.json_path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"profiles\": [", s.bench.c_str());
  for (size_t i = 0; i < s.profiles.size(); ++i) {
    std::fprintf(f, "%s\n    %s", i == 0 ? "" : ",", s.profiles[i].c_str());
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("[--profile-json] wrote %zu profiles to %s\n",
              s.profiles.size(), s.json_path.c_str());
}

/// Parses and strips `--profile` and `--profile-json <path>` (or
/// `--profile-json=<path>`; implies --profile) from argv. Returns true
/// when profiling is enabled.
inline bool BenchProfileMode(int* argc, char** argv) {
  BenchProfileState& s = BenchProfile();
  int w = 1;
  for (int r = 1; r < *argc; ++r) {
    if (std::strcmp(argv[r], "--profile") == 0) {
      s.enabled = true;
      continue;
    }
    if (std::strcmp(argv[r], "--profile-json") == 0 && r + 1 < *argc) {
      s.enabled = true;
      s.json_path = argv[++r];
      continue;
    }
    if (std::strncmp(argv[r], "--profile-json=", 15) == 0) {
      s.enabled = true;
      s.json_path = argv[r] + 15;
      continue;
    }
    argv[w++] = argv[r];
  }
  *argc = w;
  if (!s.enabled) return false;
  const char* base = std::strrchr(argv[0], '/');
  s.bench = base != nullptr ? base + 1 : argv[0];
  if (!s.json_path.empty()) std::atexit(BenchProfileFlush);
  return true;
}

inline void BenchProfileRecord(std::string profile_json) {
  BenchProfileState& s = BenchProfile();
  if (s.json_path.empty()) return;
  s.profiles.push_back(std::move(profile_json));
}

/// Parses and strips `--threads N` (or `--threads=N`) from argv — the
/// shared knob of every bench that can run its pipelines through the
/// scheduler's worker pool. Returns the requested thread count (default 1:
/// the sequential reference path; 0 = all hardware threads) and records it
/// for the `--json` output so the perf harness never diffs runs of
/// different parallelism.
inline unsigned BenchThreadsFlag(int* argc, char** argv) {
  unsigned threads = 1;
  const char* value = nullptr;
  int w = 1;
  for (int r = 1; r < *argc; ++r) {
    if (std::strcmp(argv[r], "--threads") == 0) {
      if (r + 1 >= *argc) {
        std::fprintf(stderr, "--threads requires a value\n");
        std::exit(1);
      }
      value = argv[++r];
      continue;
    }
    if (std::strncmp(argv[r], "--threads=", 10) == 0) {
      value = argv[r] + 10;
      continue;
    }
    argv[w++] = argv[r];
  }
  *argc = w;
  if (value != nullptr) {
    char* end;
    long n = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || n < 0) {
      std::fprintf(stderr, "bad --threads value: %s\n", value);
      std::exit(1);
    }
    threads = unsigned(n);
  }
  BenchJson().threads = threads;
  return threads;
}

/// Parses and strips `--shards N` (or `--shards=N`) from argv — the
/// shard-parallel knob (exec/shard.h) of benches that can run fact-table
/// pipelines over partitioned engine instances. Returns the requested
/// shard count (default 1: single-table execution) and records it for the
/// `--json` output so the perf harness never diffs runs of different
/// sharding.
inline unsigned BenchShardsFlag(int* argc, char** argv) {
  unsigned shards = 1;
  const char* value = nullptr;
  int w = 1;
  for (int r = 1; r < *argc; ++r) {
    if (std::strcmp(argv[r], "--shards") == 0) {
      if (r + 1 >= *argc) {
        std::fprintf(stderr, "--shards requires a value\n");
        std::exit(1);
      }
      value = argv[++r];
      continue;
    }
    if (std::strncmp(argv[r], "--shards=", 9) == 0) {
      value = argv[r] + 9;
      continue;
    }
    argv[w++] = argv[r];
  }
  *argc = w;
  if (value != nullptr) {
    char* end;
    long n = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || n < 1) {
      std::fprintf(stderr, "bad --shards value: %s\n", value);
      std::exit(1);
    }
    shards = unsigned(n);
  }
  BenchJson().shards = shards;
  return shards;
}

/// Median of a sample vector (scrambles the input order).
inline double BenchMedian(std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  std::nth_element(samples.begin(), samples.begin() + samples.size() / 2,
                   samples.end());
  double hi = samples[samples.size() / 2];
  if (samples.size() % 2 == 1) return hi;
  std::nth_element(samples.begin(),
                   samples.begin() + samples.size() / 2 - 1, samples.end());
  return (hi + samples[samples.size() / 2 - 1]) / 2.0;
}

#endif  // DATABLOCKS_BENCH_BENCH_COMMON_H_
