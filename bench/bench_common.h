#ifndef DATABLOCKS_BENCH_BENCH_COMMON_H_
#define DATABLOCKS_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstring>
#include <vector>

// Shared flag handling for the bench binaries. Every benchmark accepts
// `--quick` (anywhere on the command line): workloads shrink to smoke-test
// sizes so CI can launch each binary and catch bit-rot. Quick-mode numbers
// are NOT meaningful reproductions of the paper's figures.
//
// BenchQuickMode strips `--quick` from argv so positional arguments keep
// working (e.g. `bench_table2_tpch --quick 0.01 1`).
inline bool BenchQuickMode(int* argc, char** argv) {
  bool quick = false;
  int w = 1;
  for (int r = 1; r < *argc; ++r) {
    if (std::strcmp(argv[r], "--quick") == 0) {
      quick = true;
      continue;
    }
    argv[w++] = argv[r];
  }
  *argc = w;
  if (quick) {
    std::printf(
        "[--quick] smoke-test sizes; timings are not paper-comparable\n");
  }
  return quick;
}

// Argv for google-benchmark binaries: in quick mode a tiny
// --benchmark_min_time is spliced in so every registered benchmark still
// runs, just briefly. Pass `args.size() - 1` (the trailing nullptr) as argc
// to benchmark::Initialize.
inline std::vector<char*> QuickBenchArgs(int argc, char** argv, bool quick) {
  static char min_time[] = "--benchmark_min_time=0.005";
  std::vector<char*> args(argv, argv + argc);
  if (quick) args.insert(args.begin() + 1, min_time);
  args.push_back(nullptr);
  return args;
}

#endif  // DATABLOCKS_BENCH_BENCH_COMMON_H_
