// Figure 5: compile time of a scan over an 8-attribute relation as the
// number of storage-layout combinations grows — JIT-compiled ("unrolled")
// scan code vs. the pre-compiled interpreted vectorized scan.

#include <cstdio>
#include <cstdlib>

#include "exec/table_scanner.h"
#include "jit/codegen.h"
#include "jit/jit_compiler.h"
#include "util/rng.h"
#include "util/timer.h"

#include "bench_common.h"

using namespace datablocks;

int main(int argc, char** argv) {
  const bool quick = BenchQuickMode(&argc, argv);
  const uint32_t max_combos =
      argc > 1 ? uint32_t(atoi(argv[1])) : (quick ? 4u : 1024u);
  if (!JitCompiler::Available()) {
    std::printf("no system compiler available; Figure 5 requires one\n");
    return 0;
  }

  // The interpreted vectorized scan needs no per-layout compilation: its
  // "compile time" is the (constant) cost of instantiating a scanner.
  Schema schema({{"a0", TypeId::kInt64},
                 {"a1", TypeId::kInt64},
                 {"a2", TypeId::kInt64},
                 {"a3", TypeId::kInt64},
                 {"a4", TypeId::kInt64},
                 {"a5", TypeId::kInt64},
                 {"a6", TypeId::kInt64},
                 {"a7", TypeId::kInt64}});
  Table t("rel", schema, 1024);
  Rng rng(1);
  for (int i = 0; i < 1024; ++i) {
    std::vector<Value> row;
    for (int c = 0; c < 8; ++c) row.push_back(Value::Int(rng.Uniform(0, 99)));
    t.Insert(row);
  }
  t.FreezeAll();
  Timer vt;
  for (int rep = 0; rep < 100; ++rep) {
    TableScanner scan(t, {0, 1, 2, 3, 4, 5, 6, 7}, {},
                      ScanMode::kDataBlocks);
    Batch b;
    scan.Next(&b);  // includes per-block predicate translation
  }
  double vectorized_ms = vt.ElapsedMillis() / 100.0;

  std::printf(
      "=== Figure 5: compile time vs storage layout combinations "
      "(8 attributes) ===\n");
  std::printf("%-14s %16s %26s\n", "combinations", "JIT compile",
              "interpreted vectorized");
  for (uint32_t combos = 1; combos <= max_combos; combos *= 4) {
    auto layout_combos = EnumerateCombos(8, combos);
    std::string source = GenerateScanSource(layout_combos);
    std::string error;
    auto mod = JitCompiler::Compile(source, &error);
    if (mod == nullptr) {
      std::printf("compile failed at %u combos: %s\n", combos, error.c_str());
      return 1;
    }
    std::printf("%-14u %13.0f ms %23.2f ms\n", combos,
                mod->compile_seconds() * 1e3, vectorized_ms);
  }
  std::printf(
      "\n(The JIT column grows with the number of generated code paths; the\n"
      " interpreted vectorized scan is pre-compiled and stays constant —\n"
      " the effect shown in Figure 5.)\n");
  return 0;
}
