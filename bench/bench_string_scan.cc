// String-predicate scans on frozen Data Blocks: code-space evaluation
// (equality / IN / prefix-LIKE translated to dictionary codes, strings
// materialized lazily from the pinned block dictionary) versus the
// decompress-then-filter reference that eagerly decodes every string.
//
// Four measurements, each across kDecompressAll / kDataBlocks /
// kDataBlocksPsma:
//   string_eq      point equality on a 1000-value dictionary column (~0.1%)
//   string_in      3-value IN list on the same column (~0.3%)
//   string_prefix  LIKE 'cat_1%' lowered to a code range (~11%)
//   late_mat       1% integer predicate, string column consumed: the coded
//                  path materializes only matching rows
//
// All modes must agree on matched rows and materialized string bytes; the
// bench aborts on divergence, so it doubles as a smoke check.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "exec/table_scanner.h"
#include "storage/table.h"
#include "util/rng.h"
#include "util/timer.h"

#include "bench_common.h"

using namespace datablocks;

namespace {

constexpr uint32_t kCategories = 1000;

Table MakeFrozenTable(uint32_t rows) {
  Schema schema({{"category", TypeId::kString},
                 {"tag", TypeId::kString},
                 {"payload", TypeId::kInt64}});
  Table t("strings", schema, /*chunk_capacity=*/65536);
  Rng rng(17);
  std::vector<Value> row(3);
  for (uint32_t i = 0; i < rows; ++i) {
    row[0] = Value::Str("cat_" + std::to_string(rng.Uniform(0, kCategories)));
    row[1] = Value::Str("tag_" + std::to_string(rng.Uniform(0, 32)));
    row[2] = Value::Int(int64_t(rng.Uniform(0, 10000)));
    t.Insert(row);
  }
  t.FreezeAll();
  return t;
}

struct ScanResult {
  uint64_t matches = 0;
  uint64_t str_bytes = 0;  // bytes of matched `category` strings
};

/// One full scan: count matches and touch every matched string so the
/// coded path has to materialize exactly the qualifying rows.
ScanResult RunScan(const Table& t, const std::vector<Predicate>& preds,
                   ScanMode mode) {
  TableScanner scan(t, {0, 2}, preds, mode);
  Batch b;
  ScanResult r;
  while (scan.Next(&b)) {
    r.matches += b.count;
    for (uint32_t i = 0; i < b.count; ++i)
      r.str_bytes += b.cols[0].Str(i).size();
  }
  return r;
}

struct ModeSpec {
  const char* label;
  ScanMode mode;
};

constexpr ModeSpec kModes[] = {
    {"decompress", ScanMode::kDecompressAll},
    {"code-space", ScanMode::kDataBlocks},
    {"code+PSMA", ScanMode::kDataBlocksPsma},
};

void Measure(const char* name, const Table& t,
             const std::vector<Predicate>& preds, int repeats) {
  ScanResult reference;
  bool have_reference = false;
  for (const ModeSpec& m : kModes) {
    std::vector<double> samples;
    ScanResult r;
    for (int rep = 0; rep < repeats; ++rep) {
      Timer timer;
      r = RunScan(t, preds, m.mode);
      samples.push_back(timer.ElapsedSeconds());
    }
    if (!have_reference) {
      reference = r;
      have_reference = true;
      if (r.matches == 0) {
        std::fprintf(stderr, "%s: predicate matched nothing\n", name);
        std::abort();
      }
    } else if (r.matches != reference.matches ||
               r.str_bytes != reference.str_bytes) {
      std::fprintf(stderr, "%s/%s diverged from reference\n", name, m.label);
      std::abort();
    }
    const double secs = BenchMedian(samples);
    const double rows = double(t.num_rows());
    std::printf("%-14s %-11s %9.2f ms  %12.0f rows/s  (%llu matches)\n",
                name, m.label, secs * 1e3, rows / secs,
                (unsigned long long)r.matches);
    BenchJsonRecord(name, m.label, secs * 1e9 / rows, rows / secs);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = BenchQuickMode(&argc, argv);
  BenchJsonMode(&argc, argv, quick);
  const uint32_t rows =
      argc > 1 ? uint32_t(atof(argv[1]) * 1e6) : (quick ? 100000 : 2000000);
  const int repeats = quick ? 3 : 7;

  std::printf("building frozen table, %u rows, %u-value dictionary...\n",
              rows, kCategories);
  Table t = MakeFrozenTable(rows);

  std::printf("\n=== string-predicate scan throughput ===\n");
  Measure("string_eq", t,
          {Predicate::Eq(0, Value::Str("cat_500"))}, repeats);
  Measure("string_in", t,
          {Predicate::In(0, {Value::Str("cat_100"), Value::Str("cat_200"),
                             Value::Str("cat_300")})},
          repeats);
  Measure("string_prefix", t,
          {Predicate::Prefix(0, Value::Str("cat_1"))}, repeats);
  Measure("late_mat", t,
          {Predicate::Lt(2, Value::Int(100))}, repeats);

  std::printf(
      "\n(Expected shape: code-space modes beat decompress-then-filter on\n"
      " every selective predicate — they compare u32 codes against a\n"
      " translated code or range and only materialize matching strings;\n"
      " the decompress mode pays full dictionary decode per block first.)\n");
  return 0;
}
