// Figure 12: byte-addressable Data Blocks vs. SIMD horizontal bit-packing.
//  (a) cost of evaluating `l <= A <= r` as selectivity varies — bit-packed
//      scans with bitmap iteration degrade at moderate selectivities; the
//      positions-table variant and Data Blocks stay flat.
//  (b) cost of *unpacking* the matching tuples (3 attributes): positional
//      access into bit-packed data vs unpack-all-and-filter vs Data Block
//      positional unpacking.
//
// Setup mirrors the paper: three columns A, B (domain [0, 2^16], i.e. 17
// bits -> Data Blocks are forced to 4-byte codes) and C (domain [0, 2^8],
// 9 bits -> 2-byte codes); 2^16 rows.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <random>
#include <vector>

#include "bitpack/bitpacked_column.h"
#include "datablock/block_scan.h"
#include "datablock/data_block.h"
#include "util/timer.h"

#include "bench_common.h"

using namespace datablocks;

namespace {

constexpr uint32_t kN = 1u << 16;

struct Setup {
  std::vector<uint32_t> a, b, c;
  BitPackedColumn pa, pb, pc;
  DataBlock block;

  Setup() {
    std::mt19937_64 rng(7);
    a.resize(kN);
    b.resize(kN);
    c.resize(kN);
    for (uint32_t i = 0; i < kN; ++i) {
      a[i] = uint32_t(rng() % ((1u << 16) + 1));
      b[i] = uint32_t(rng() % ((1u << 16) + 1));
      c[i] = uint32_t(rng() % ((1u << 8) + 1));
    }
    pa = BitPackedColumn::Pack(a.data(), kN, 17);
    pb = BitPackedColumn::Pack(b.data(), kN, 17);
    pc = BitPackedColumn::Pack(c.data(), kN, 9);

    Schema schema({{"a", TypeId::kInt32},
                   {"b", TypeId::kInt32},
                   {"c", TypeId::kInt32}});
    Chunk chunk(&schema, kN);
    std::vector<Value> row;
    for (uint32_t i = 0; i < kN; ++i) {
      row = {Value::Int(a[i]), Value::Int(b[i]), Value::Int(c[i])};
      chunk.Append(row);
    }
    block = DataBlock::Build(chunk);
  }
};

uint64_t BestCycles(int reps, const std::function<void()>& fn) {
  uint64_t best = UINT64_MAX;
  for (int r = 0; r < reps; ++r) {
    uint64_t t0 = ReadTsc();
    fn();
    best = std::min(best, ReadTsc() - t0);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  BenchQuickMode(&argc, argv);  // one 2^16 block: already smoke-sized
  Setup s;
  std::vector<uint32_t> pos(kN + 8);
  std::vector<uint32_t> out_a(kN), out_b(kN), out_c(kN);

  std::printf("=== Figure 12(a): SARG evaluation cost, cycles/tuple ===\n");
  std::printf("%-6s %14s %14s %22s\n", "sel%", "Data Blocks", "bit-packed",
              "bit-packed+postable");
  for (int sel : {0, 5, 10, 25, 50, 75, 100}) {
    uint32_t hi = uint32_t(uint64_t(1 << 16) * sel / 100);
    uint32_t lo = 0;
    // Data Blocks: translated predicate + SIMD kernel on 4-byte codes.
    std::vector<Predicate> preds = {
        Predicate::Between(0, Value::Int(lo), Value::Int(hi))};
    auto prep = PrepareBlockScan(s.block, preds, false);
    uint64_t db_cycles = BestCycles(20, [&] {
      if (!prep.skip) {
        uint32_t n = FindMatchesInBlock(s.block, prep, 0, kN, BestIsa(),
                                        pos.data());
        (void)n;
      }
    });
    uint64_t bp_iter = BestCycles(20, [&] {
      s.pa.ScanBetweenPositions(lo, hi, pos.data(), false);
    });
    uint64_t bp_table = BestCycles(20, [&] {
      s.pa.ScanBetweenPositions(lo, hi, pos.data(), true);
    });
    std::printf("%-6d %14.2f %14.2f %22.2f\n", sel,
                double(db_cycles) / kN, double(bp_iter) / kN,
                double(bp_table) / kN);
  }

  std::printf(
      "\n=== Figure 12(b): unpacking matching tuples (3 attributes), "
      "cycles per matching tuple ===\n");
  std::printf("%-6s %14s %22s %22s\n", "sel%", "Data Blocks",
              "bit-packed positional", "bit-packed unpack-all");
  for (int sel : {1, 5, 10, 25, 50, 75, 100}) {
    uint32_t hi = uint32_t(uint64_t(1 << 16) * sel / 100);
    std::vector<Predicate> preds = {
        Predicate::Between(0, Value::Int(0), Value::Int(int64_t(hi)))};
    auto prep = PrepareBlockScan(s.block, preds, false);
    uint32_t n_matches =
        prep.skip ? 0
                  : FindMatchesInBlock(s.block, prep, 0, kN, BestIsa(),
                                       pos.data());
    if (n_matches == 0) continue;

    // Data Blocks: positional unpack of the three columns.
    ColumnVector va, vb, vc;
    uint64_t db_cycles = BestCycles(10, [&] {
      va.Init(TypeId::kInt32);
      vb.Init(TypeId::kInt32);
      vc.Init(TypeId::kInt32);
      UnpackColumn(s.block, 0, pos.data(), n_matches, &va);
      UnpackColumn(s.block, 1, pos.data(), n_matches, &vb);
      UnpackColumn(s.block, 2, pos.data(), n_matches, &vc);
    });

    // Bit-packed positional: scalar extraction of each match.
    uint64_t bp_pos = BestCycles(10, [&] {
      for (uint32_t j = 0; j < n_matches; ++j) {
        uint32_t p = pos[j];
        out_a[j] = s.pa.Get(p);
        out_b[j] = s.pb.Get(p);
        out_c[j] = s.pc.Get(p);
      }
    });

    // Bit-packed unpack-all-and-filter: SIMD-unpack entire columns, then
    // gather the matches.
    std::vector<uint32_t> full_a(kN), full_b(kN), full_c(kN);
    uint64_t bp_all = BestCycles(10, [&] {
      s.pa.UnpackAll(full_a.data());
      s.pb.UnpackAll(full_b.data());
      s.pc.UnpackAll(full_c.data());
      for (uint32_t j = 0; j < n_matches; ++j) {
        uint32_t p = pos[j];
        out_a[j] = full_a[p];
        out_b[j] = full_b[p];
        out_c[j] = full_c[p];
      }
    });

    std::printf("%-6d %14.1f %22.1f %22.1f\n", sel,
                double(db_cycles) / n_matches, double(bp_pos) / n_matches,
                double(bp_all) / n_matches);
  }
  std::printf(
      "\n(Expected shape: Data Blocks cheapest almost everywhere;\n"
      " bit-packed positional access competitive only at low selectivity;\n"
      " unpack-all wins over positional beyond ~20%% but still pays for\n"
      " unpacking non-qualifying tuples — Section 5.4.)\n");
  return 0;
}
