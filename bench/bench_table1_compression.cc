// Table 1: database sizes uncompressed vs. compressed, for TPC-H, the IMDB
// cast_info relation, and the flights data set. A sub-byte bit-packed size
// estimate stands in for the "Vectorwise compressed" reference column (see
// DESIGN.md substitution 4).

#include <cstdio>
#include <cstdlib>

#include "tpch/tpch_db.h"
#include "util/bits.h"
#include "workloads/flights.h"
#include "workloads/imdb.h"

#include "bench_common.h"

using namespace datablocks;

namespace {

/// Lower-bound estimate of a PFOR/PDICT-style sub-byte encoding: codes use
/// BitsNeeded() bits instead of whole bytes; dictionaries and string areas
/// are kept as-is.
uint64_t BitPackedEstimate(const Table& t) {
  uint64_t total = 0;
  for (size_t c = 0; c < t.num_chunks(); ++c) {
    const DataBlock* b = t.frozen_block(c);
    if (b == nullptr) continue;
    for (uint32_t a = 0; a < b->num_columns(); ++a) {
      const AttrMeta& m = b->attr(a);
      uint64_t n = b->num_rows();
      switch (Compression(m.compression)) {
        case Compression::kSingleValue:
          break;
        case Compression::kDictionary:
          total += (n * BitsNeeded(m.dict_count ? m.dict_count - 1 : 0) + 7) / 8;
          total += uint64_t(m.dict_count) * 8;
          if (TypeId(m.type) == TypeId::kString && m.dict_count > 0) {
            // String payload: sum of dictionary string lengths.
            uint64_t bytes = 0;
            for (uint32_t k = 0; k < m.dict_count; ++k)
              bytes += b->dict_string(a, k).size();
            total += bytes;
          }
          break;
        case Compression::kTruncation:
          total += (n * BitsNeeded(uint64_t(m.max_val) - uint64_t(m.min_val)) +
                    7) /
                   8;
          break;
        case Compression::kRaw:
          total += n * m.code_width;
          break;
      }
      if (m.flags & AttrMeta::kHasNulls) total += BitmapWords(n) * 8;
    }
  }
  return total;
}

void Report(const char* name, uint64_t uncompressed, Table* tables[],
            int num_tables) {
  uint64_t compressed = 0, bitpacked = 0;
  for (int i = 0; i < num_tables; ++i) {
    tables[i]->FreezeAll();
    compressed += tables[i]->MemoryBytes();
    bitpacked += BitPackedEstimate(*tables[i]);
  }
  std::printf("%-16s %12.1f MB %12.1f MB %12.1f MB %8.2fx %10.2fx\n", name,
              double(uncompressed) / 1e6, double(compressed) / 1e6,
              double(bitpacked) / 1e6,
              double(uncompressed) / double(compressed),
              double(compressed) / double(bitpacked));
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = BenchQuickMode(&argc, argv);
  double sf = argc > 1 ? atof(argv[1]) : (quick ? 0.01 : 0.2);

  std::printf("=== Table 1: database sizes (uncompressed vs Data Blocks vs "
              "sub-byte reference) ===\n");
  std::printf("%-16s %15s %15s %15s %9s %11s\n", "data set", "uncompressed",
              "Data Blocks", "bit-packed", "ratio", "DB/packed");

  {
    tpch::TpchConfig cfg;
    cfg.scale_factor = sf;
    auto db = tpch::MakeTpch(cfg);
    uint64_t hot = db->TotalBytes();
    Table* tables[8] = {&db->region, &db->nation,   &db->supplier,
                        &db->customer, &db->part,   &db->partsupp,
                        &db->orders,  &db->lineitem};
    char name[64];
    std::snprintf(name, sizeof(name), "TPC-H SF%.2g", sf);
    Report(name, hot, tables, 8);
  }
  {
    workloads::ImdbConfig cfg;
    cfg.num_rows = uint64_t(3'600'000 * sf * 5);  // scaled cast_info
    auto t = workloads::MakeCastInfo(cfg);
    uint64_t hot = t->MemoryBytes();
    Table* tables[1] = {t.get()};
    Report("IMDB cast_info", hot, tables, 1);
  }
  {
    workloads::FlightsConfig cfg;
    cfg.num_rows = uint64_t(10'000'000 * sf);
    auto t = workloads::MakeFlights(cfg);
    uint64_t hot = t->MemoryBytes();
    Table* tables[1] = {t.get()};
    Report("Flights", hot, tables, 1);
  }
  std::printf(
      "\n(Paper Table 1: HyPer compresses TPC-H ~1.9x, cast_info ~3.6x,\n"
      " flights ~5x; Vectorwise's heavier sub-byte schemes save another\n"
      " ~25%%, which the bit-packed estimate column mirrors.)\n");
  return 0;
}
