// Table 2 / Table 4 (Appendix F): runtimes of all 22 TPC-H queries under
// the six scan configurations of the paper, plus sum and geometric mean.
//
//   JIT         tuple-at-a-time scan, uncompressed
//   VEC         vectorized scan, uncompressed, no SARG pushdown
//   +SARG       vectorized scan, uncompressed, SARG pushdown (SIMD)
//   DB          vectorized Data Block scan, predicates in the pipeline
//   +SARG/SMA   Data Block scan with SARG pushdown and SMA skipping
//   +PSMA       +SARG/SMA with PSMA range narrowing
//
// Usage: bench_table2_tpch [scale_factor] [repetitions]

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "tpch/queries.h"
#include "util/timer.h"

#include "bench_common.h"

using namespace datablocks;
using namespace datablocks::tpch;

namespace {

double MeasureSeconds(int q, const TpchDatabase& db, ScanMode mode,
                      int reps) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    QueryResult result = RunQuery(q, db, ScanOptions{.mode = mode});
    best = std::min(best, t.ElapsedSeconds());
    if (result.rows.empty() && q != 15 && q != 2) {
      // Only a handful of queries may legitimately return few rows; an
      // empty result elsewhere would make the timing meaningless.
      std::fprintf(stderr, "warning: Q%d returned no rows\n", q);
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = BenchQuickMode(&argc, argv);
  TpchConfig cfg;
  cfg.scale_factor = argc > 1 ? atof(argv[1]) : (quick ? 0.02 : 0.2);
  const int reps = argc > 2 ? atoi(argv[2]) : (quick ? 1 : 2);

  std::printf("generating TPC-H SF %.2f (hot + frozen instances)...\n",
              cfg.scale_factor);
  Timer gen;
  auto hot = MakeTpch(cfg);
  auto frozen = MakeTpch(cfg);
  frozen->FreezeAll();
  std::printf("generated in %.1f s; lineitem rows = %llu\n\n",
              gen.ElapsedSeconds(),
              (unsigned long long)hot->lineitem.num_rows());

  struct Config {
    const char* name;
    const TpchDatabase* db;
    ScanMode mode;
  };
  const Config configs[6] = {
      {"JIT", hot.get(), ScanMode::kJit},
      {"VEC", hot.get(), ScanMode::kVectorized},
      {"+SARG", hot.get(), ScanMode::kVectorizedSarg},
      {"DB", frozen.get(), ScanMode::kVectorized},
      {"+SARG/SMA", frozen.get(), ScanMode::kDataBlocks},
      {"+PSMA", frozen.get(), ScanMode::kDataBlocksPsma},
  };

  std::printf("=== Table 2 / Table 4: TPC-H SF %.2f, seconds per query ===\n",
              cfg.scale_factor);
  std::printf("      %10s %10s %10s | %10s %10s %10s %9s\n", "JIT", "VEC",
              "+SARG", "DB", "+SARG/SMA", "+PSMA", "PSMA/JIT");
  double sum[6] = {0};
  double logsum[6] = {0};
  for (int q = 1; q <= 22; ++q) {
    double secs[6];
    for (int c = 0; c < 6; ++c) {
      secs[c] = MeasureSeconds(q, *configs[c].db, configs[c].mode, reps);
      sum[c] += secs[c];
      logsum[c] += std::log(secs[c]);
    }
    std::printf("Q%-4d %9.3fs %9.3fs %9.3fs | %9.3fs %9.3fs %9.3fs %8.2fx\n",
                q, secs[0], secs[1], secs[2], secs[3], secs[4], secs[5],
                secs[0] / secs[5]);
  }
  std::printf("----\n%-5s", "sum");
  for (int c = 0; c < 6; ++c) std::printf(" %9.3fs", sum[c]);
  std::printf("\n%-5s", "geo");
  double geo[6];
  for (int c = 0; c < 6; ++c) {
    geo[c] = std::exp(logsum[c] / 22.0);
    std::printf(" %9.3fs", geo[c]);
  }
  std::printf("\n\ngeometric-mean speedup over JIT scans:\n");
  for (int c = 0; c < 6; ++c)
    std::printf("  %-10s %6.2fx\n", configs[c].name, geo[0] / geo[c]);

  std::printf("\ncompressed/uncompressed size: %.1f MB / %.1f MB (%.2fx)\n",
              double(frozen->TotalBytes()) / 1e6,
              double(hot->TotalBytes()) / 1e6,
              double(hot->TotalBytes()) / double(frozen->TotalBytes()));
  return 0;
}
