// Table 2 / Table 4 (Appendix F): runtimes of all 22 TPC-H queries under
// the six scan configurations of the paper, plus sum and geometric mean.
//
//   JIT         tuple-at-a-time scan, uncompressed
//   VEC         vectorized scan, uncompressed, no SARG pushdown
//   +SARG       vectorized scan, uncompressed, SARG pushdown (SIMD)
//   DB          vectorized Data Block scan, predicates in the pipeline
//   +SARG/SMA   Data Block scan with SARG pushdown and SMA skipping
//   +PSMA       +SARG/SMA with PSMA range narrowing
//
// Usage: bench_table2_tpch [--queries 1,6] [--threads N] [--shards N]
//        [--profile] [--profile-json out.json] [scale_factor] [repetitions]
//
// --profile attaches an execution profile (obs/query_profile.h) to every
// measured run and prints the per-query EXPLAIN-ANALYZE-style report for
// the +PSMA config; --profile-json collects the profile JSON objects into
// a file for tools/profile_report.py.
//
// --queries restricts the run to a comma-separated query subset (the CI
// perf-regression job measures Q1/Q6 only). --threads N runs every query's
// fact-table pipelines through the shared scheduler worker pool with N
// parallelism slots (default 1 = the sequential reference path, 0 = all
// hardware threads); the thread count is recorded in the --json output,
// along with the peak aggregation-state bytes per measurement. --shards N
// hash-shards the fact tables (lineitem + orders on orderkey) across N
// independent engine instances and runs every fact-table pipeline
// shard-parallel with exchange repartitioning (exec/shard.h). The final
// "result checksum" line fingerprints every (query, config) result and is
// identical across thread AND shard counts by the parallel-determinism
// contract — the bench-smoke CI job asserts exactly that.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "exec/partitioned_agg.h"
#include "obs/query_profile.h"
#include "tpch/queries.h"
#include "util/cpu.h"
#include "util/timer.h"

#include "bench_common.h"

using namespace datablocks;
using namespace datablocks::tpch;

namespace {

struct Measurement {
  double best;    // best-of-reps (the printed tables use this)
  double median;  // median-of-reps (the JSON harness uses this)
  double state_peak_bytes;  // peak aggregation-state bytes of one run
  uint64_t checksum;        // FNV over the result rows (thread-invariant)
  std::string report;       // --profile: last rep's execution profile
};

uint64_t ResultChecksum(const QueryResult& result) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a over rows + separators
  for (const std::string& row : result.rows) {
    for (char c : row) h = (h ^ uint8_t(c)) * 1099511628211ull;
    h = (h ^ uint8_t('\n')) * 1099511628211ull;
  }
  return h;
}

Measurement MeasureSeconds(int q, const TpchDatabase& db, ScanMode mode,
                           const char* config, int reps, unsigned threads,
                           const ShardSet* shards) {
  std::vector<double> samples;
  double best = 1e30;
  uint64_t checksum = 0;
  std::string report;
  aggstate::ResetPeaks();
  for (int r = 0; r < reps; ++r) {
    // With --profile, EVERY measured run of EVERY config carries a live
    // profile — so profiled-vs-unprofiled comparisons (the CI overhead
    // guard) measure instrumentation cost, not a config mix.
    std::unique_ptr<obs::QueryProfile> profile;
    if (BenchProfile().enabled) {
      char qname[8];
      std::snprintf(qname, sizeof(qname), "Q%d", q);
      profile = std::make_unique<obs::QueryProfile>(
          qname, config, threads,
          shards != nullptr ? shards->num_shards() : 1);
    }
    Timer t;
    QueryResult result =
        RunQuery(q, db,
                 ScanOptions{.mode = mode,
                             .ctx = {.threads = threads,
                                     .profile = profile.get(),
                                     .shards = shards}});
    samples.push_back(t.ElapsedSeconds());
    best = std::min(best, samples.back());
    checksum = result.rows.empty() ? 1 : ResultChecksum(result);
    if (result.rows.empty() && q != 15 && q != 2) {
      // Only a handful of queries may legitimately return few rows; an
      // empty result elsewhere would make the timing meaningless.
      std::fprintf(stderr, "warning: Q%d returned no rows\n", q);
    }
    if (profile != nullptr && r == reps - 1) {
      report = profile->Report();
      BenchProfileRecord(profile->ToJson());
    }
  }
  return {best, BenchMedian(samples),
          double(aggstate::GetStats().peak_total_bytes), checksum,
          std::move(report)};
}

/// Strips `--queries a,b,...` / `--queries=a,b,...` from argv. Returns the
/// selected queries, defaulting to all 22.
std::vector<int> ParseQueries(int* argc, char** argv) {
  std::vector<int> queries;
  const char* list = nullptr;
  int w = 1;
  for (int r = 1; r < *argc; ++r) {
    if (std::strcmp(argv[r], "--queries") == 0 && r + 1 < *argc) {
      list = argv[++r];
      continue;
    }
    if (std::strncmp(argv[r], "--queries=", 10) == 0) {
      list = argv[r] + 10;
      continue;
    }
    argv[w++] = argv[r];
  }
  *argc = w;
  if (list != nullptr) {
    for (const char* p = list; *p != '\0';) {
      char* end;
      long q = std::strtol(p, &end, 10);
      if (end == p || q < 1 || q > 22) {
        std::fprintf(stderr, "bad --queries list: %s\n", list);
        std::exit(1);
      }
      queries.push_back(int(q));
      p = *end == ',' ? end + 1 : end;
    }
  }
  if (queries.empty()) {
    for (int q = 1; q <= 22; ++q) queries.push_back(q);
  }
  return queries;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = BenchQuickMode(&argc, argv);
  BenchJsonMode(&argc, argv, quick);
  const bool profiling = BenchProfileMode(&argc, argv);
  const unsigned threads = BenchThreadsFlag(&argc, argv);
  const unsigned num_shards = BenchShardsFlag(&argc, argv);
  const std::vector<int> queries = ParseQueries(&argc, argv);
  TpchConfig cfg;
  cfg.scale_factor = argc > 1 ? atof(argv[1]) : (quick ? 0.02 : 0.2);
  const int reps = argc > 2 ? atoi(argv[2]) : (quick ? 1 : 2);

  std::printf("generating TPC-H SF %.2f (hot + frozen instances)...\n",
              cfg.scale_factor);
  Timer gen;
  auto hot = MakeTpch(cfg);
  auto frozen = MakeTpch(cfg);
  // Shard sets snapshot the sources, so build the frozen one BEFORE the
  // freeze (cheap hot-chunk reads), then freeze shards alongside sources.
  std::unique_ptr<ShardSet> hot_shards, frozen_shards;
  if (num_shards > 1) {
    hot_shards = std::make_unique<ShardSet>(BuildTpchShards(*hot, num_shards));
    frozen_shards =
        std::make_unique<ShardSet>(BuildTpchShards(*frozen, num_shards));
    frozen_shards->FreezeAll();
  }
  frozen->FreezeAll();
  std::printf("generated in %.1f s; lineitem rows = %llu%s\n\n",
              gen.ElapsedSeconds(),
              (unsigned long long)hot->lineitem.num_rows(),
              num_shards > 1 ? " (fact tables sharded)" : "");

  struct Config {
    const char* name;
    const TpchDatabase* db;
    ScanMode mode;
    const ShardSet* shards;
  };
  const Config configs[6] = {
      {"JIT", hot.get(), ScanMode::kJit, hot_shards.get()},
      {"VEC", hot.get(), ScanMode::kVectorized, hot_shards.get()},
      {"+SARG", hot.get(), ScanMode::kVectorizedSarg, hot_shards.get()},
      {"DB", frozen.get(), ScanMode::kVectorized, frozen_shards.get()},
      {"+SARG/SMA", frozen.get(), ScanMode::kDataBlocks, frozen_shards.get()},
      {"+PSMA", frozen.get(), ScanMode::kDataBlocksPsma, frozen_shards.get()},
  };

  std::printf(
      "=== Table 2 / Table 4: TPC-H SF %.2f, %u thread%s, %u shard%s, "
      "seconds per query ===\n",
      cfg.scale_factor, threads == 0 ? cpu::HardwareThreads() : threads,
      (threads == 0 ? cpu::HardwareThreads() : threads) == 1 ? "" : "s",
      num_shards, num_shards == 1 ? "" : "s");
  std::printf("      %10s %10s %10s | %10s %10s %10s %9s\n", "JIT", "VEC",
              "+SARG", "DB", "+SARG/SMA", "+PSMA", "PSMA/JIT");
  const double lineitem_rows = double(hot->lineitem.num_rows());
  double sum[6] = {0};
  double logsum[6] = {0};
  // Combined checksum of every (query, config) result: bit-identical
  // between --threads 1 and --threads N by the parallel-determinism
  // contract — the bench-smoke CI job asserts exactly that.
  uint64_t checksum = 1469598103934665603ull;
  double state_peak_max = 0;
  std::vector<std::string> reports;  // --profile: +PSMA profile per query
  for (int q : queries) {
    double secs[6];
    double state_peak = 0;
    for (int c = 0; c < 6; ++c) {
      Measurement m = MeasureSeconds(q, *configs[c].db, configs[c].mode,
                                     configs[c].name, reps, threads,
                                     configs[c].shards);
      secs[c] = m.best;
      sum[c] += secs[c];
      logsum[c] += std::log(secs[c]);
      state_peak = std::max(state_peak, m.state_peak_bytes);
      checksum = HashCombine(checksum, m.checksum);
      BenchJsonRecord("tpch_q" + std::to_string(q), configs[c].name,
                      m.median * 1e9, lineitem_rows / m.median,
                      m.state_peak_bytes);
      // The +PSMA config exercises every scan feature (SARG, SMA skipping,
      // PSMA narrowing, compressed blocks) — its report is the one worth
      // reading, so it is the one printed.
      if (profiling && c == 5) reports.push_back(std::move(m.report));
    }
    state_peak_max = std::max(state_peak_max, state_peak);
    std::printf(
        "Q%-4d %9.3fs %9.3fs %9.3fs | %9.3fs %9.3fs %9.3fs %8.2fx "
        "agg %.1f MB\n",
        q, secs[0], secs[1], secs[2], secs[3], secs[4], secs[5],
        secs[0] / secs[5], state_peak / 1e6);
  }
  if (profiling) {
    std::printf("\n=== execution profiles (+PSMA config, last rep) ===\n");
    for (const std::string& report : reports) {
      std::printf("%s\n", report.c_str());
    }
  }
  std::printf("----\n%-5s", "sum");
  for (int c = 0; c < 6; ++c) std::printf(" %9.3fs", sum[c]);
  std::printf("\n%-5s", "geo");
  double geo[6];
  for (int c = 0; c < 6; ++c) {
    geo[c] = std::exp(logsum[c] / double(queries.size()));
    std::printf(" %9.3fs", geo[c]);
  }
  std::printf("\n\ngeometric-mean speedup over JIT scans:\n");
  for (int c = 0; c < 6; ++c)
    std::printf("  %-10s %6.2fx\n", configs[c].name, geo[0] / geo[c]);

  std::printf("\ncompressed/uncompressed size: %.1f MB / %.1f MB (%.2fx)\n",
              double(frozen->TotalBytes()) / 1e6,
              double(hot->TotalBytes()) / 1e6,
              double(hot->TotalBytes()) / double(frozen->TotalBytes()));
  std::printf("peak aggregation state: %.1f MB (partitioned: one dense "
              "state regardless of --threads)\n",
              state_peak_max / 1e6);
  std::printf("result checksum: %016llx\n", (unsigned long long)checksum);
  return 0;
}
