// Shard-scaling sweep: the same scan+aggregate pipelines run against the
// single-table engine and against N partitioned engine instances with
// exchange repartitioning (exec/shard.h, exec/exchange.h).
//
// Five pipelines, chosen to expose each side of the trade:
//
//   hashagg_shardkey   sparse group-by on the SHARD key with a SCATTERED
//                      layout (lineitem sharded AND grouped by l_partkey,
//                      which is uniform across the table). Unsharded, every
//                      worker-local table grows to ~|G| entries — threads x
//                      |G| replicas to build and fold; shard-affine
//                      scanning keeps each local to its shard's disjoint
//                      ~|G|/S keys, so total state and merge work drop to
//                      ~|G| — the co-partitioning win, and the reason
//                      shards pay off even on one core.
//   hashagg_orderkey   group-by on the shard key with a CLUSTERED layout
//                      (l_orderkey orders the table): contiguous morsels
//                      give the unsharded locals accidentally-disjoint key
//                      ranges, so sharding adds little — the honest
//                      already-partitioned case.
//   hashagg_partkey    group-by on a NON-shard key (orderkey-sharded scan
//                      grouped by partkey): shards cannot co-locate
//                      groups, every local still sees most keys. The
//                      neutral case.
//   dense_orderkey     dense per-order aggregation with co-partitioned
//                      routing (order ordinals invert to the shard key, so
//                      each update is owned by the shard that produced it
//                      and the exchange degenerates to self-delivery); the
//                      residual cost vs the unsharded spill engine is the
//                      per-element ownership hash.
//   scan_filter_sum    Q6-shaped predicate scan + scalar sum: sharding
//                      only changes which table the morsels come from.
//
// Usage: bench_exchange [--shards N] [--threads T] [--quick]
//        [--json out.json] [scale_factor] [repetitions]
//
// Sweeps shard counts 1,2,4,...,N at fixed T parallelism slots and prints
// the per-pipeline medians plus the sum-of-medians per shard count. Every
// pipeline's result is checksummed order-independently; the checksums must
// be identical across shard counts (the bit-identical contract) and the
// combined value is printed as the final "result checksum" line for CI.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "exec/hash_table.h"
#include "exec/scheduler.h"
#include "tpch/queries.h"
#include "util/date.h"
#include "util/timer.h"

#include "bench_common.h"

using namespace datablocks;
using namespace datablocks::tpch;

namespace {

struct AggPair {
  int64_t qty = 0;
  int64_t revenue = 0;
};

// Order-independent fingerprint accumulator: hash tables iterate in layout
// order, which legitimately differs across shard counts, so per-group
// hashes are COMBINED BY ADDITION (commutative) rather than chained.
struct Fingerprint {
  uint64_t sum = 0;
  void Add(uint64_t key, uint64_t a, uint64_t b = 0) {
    sum += Hash64(HashCombine(HashCombine(Hash64(key), a), b));
  }
};

// One timed execution of a pipeline: (seconds, result fingerprint).
struct Sample {
  double secs;
  uint64_t checksum;
};

Sample RunHashAgg(const TpchDatabase& db, const ScanOptions& opt,
                  uint32_t key_col, bool key_is_i64) {
  namespace li = col::lineitem;
  Timer t;
  PartitionedAggTable<AggPair> groups = detail::ParHashAgg<AggPair>(
      db.lineitem, opt, {key_col, li::quantity, li::extendedprice}, {},
      [key_is_i64](PartitionedAggTable<AggPair>& tab, const Batch& b) {
        for (uint32_t i = 0; i < b.count; ++i) {
          const uint64_t key = key_is_i64 ? uint64_t(b.cols[0].i64[i])
                                          : uint64_t(b.cols[0].i32[i]);
          AggPair& g = tab.Ref(key);
          g.qty += b.cols[1].i32[i];  // l_quantity is int32
          g.revenue += b.cols[2].i64[i];
        }
      },
      [](AggPair& dst, const AggPair& src) {
        dst.qty += src.qty;
        dst.revenue += src.revenue;
      });
  const double secs = t.ElapsedSeconds();
  Fingerprint fp;
  groups.ForEach([&](uint64_t key, const AggPair& g) {
    fp.Add(key, uint64_t(g.qty), uint64_t(g.revenue));
  });
  return {secs, fp.sum};
}

Sample RunDenseAgg(const TpchDatabase& db, const ScanOptions& opt) {
  namespace li = col::lineitem;
  const size_t domain = size_t(db.NumOrders());
  Timer t;
  std::vector<int64_t> revenue = detail::ParDenseAgg<int64_t, int64_t>(
      db.lineitem, opt, {li::orderkey, li::extendedprice, li::discount}, {},
      domain,
      [](auto& sink, const Batch& b) {
        for (uint32_t i = 0; i < b.count; ++i) {
          // orderkey = ordinal * 4 (dbgen sparsity), so /4-1 is dense.
          const size_t idx = size_t(b.cols[0].i64[i] / 4 - 1);
          sink.Add(idx, b.cols[1].i64[i] * (100 - b.cols[2].i32[i]));
        }
      },
      [](int64_t& acc, const int64_t& v) { acc += v; }, int64_t{0},
      detail::OrderKeyOf);
  const double secs = t.ElapsedSeconds();
  Fingerprint fp;
  for (size_t i = 0; i < revenue.size(); ++i) {
    if (revenue[i] != 0) fp.Add(i, uint64_t(revenue[i]));
  }
  return {secs, fp.sum};
}

Sample RunFilterSum(const TpchDatabase& db, const ScanOptions& opt) {
  namespace li = col::lineitem;
  const int32_t from = MakeDate(1994, 1, 1);
  const int32_t to = MakeDate(1995, 1, 1);
  Timer t;
  struct Sum {
    int64_t v = 0;
    uint64_t n = 0;
  };
  Sum total = detail::ParAgg<Sum>(
      db.lineitem, opt, {li::extendedprice, li::discount},
      {Predicate::Between(li::shipdate, Value::Int(from),
                          Value::Int(to - 1))},
      [] { return Sum{}; },
      [](Sum& s, const Batch& b) {
        for (uint32_t i = 0; i < b.count; ++i) {
          s.v += b.cols[0].i64[i] * b.cols[1].i32[i];
          ++s.n;
        }
      },
      [](Sum& dst, Sum& src) {
        dst.v += src.v;
        dst.n += src.n;
      });
  const double secs = t.ElapsedSeconds();
  Fingerprint fp;
  fp.Add(0, uint64_t(total.v), total.n);
  return {secs, fp.sum};
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = BenchQuickMode(&argc, argv);
  BenchJsonMode(&argc, argv, quick);
  unsigned threads = BenchThreadsFlag(&argc, argv);
  const unsigned max_shards = BenchShardsFlag(&argc, argv);
  if (BenchJson().threads == 1) {
    // Default to 4 parallelism slots: the unsharded engine then pays one
    // local aggregation state per slot — the replication the shards
    // remove. (Slots are logical; this does not require 4 cores.)
    threads = 4;
    BenchJson().threads = threads;
  }
  TpchConfig cfg;
  cfg.scale_factor = argc > 1 ? atof(argv[1]) : (quick ? 0.02 : 0.2);
  // Full-mode reps err high: the sweep's verdict is a ratio of sums of
  // medians, and shard-scaling deltas are small enough that run-to-run
  // scheduler noise needs several reps to median away.
  const int reps = argc > 2 ? atoi(argv[2]) : (quick ? 2 : 7);

  std::printf("generating TPC-H SF %.2f (frozen)...\n", cfg.scale_factor);
  auto db = MakeTpch(cfg);

  // Shard sets snapshot the hot source; freeze sources and shards after.
  // Two families per shard count: the standard orderkey co-sharding
  // (BuildTpchShards) and a partkey sharding of lineitem alone for the
  // hashagg_shardkey leg (shard key == group key, scattered layout).
  std::vector<unsigned> sweep = {1};
  for (unsigned s = 2; s <= max_shards; s *= 2) sweep.push_back(s);
  std::vector<std::unique_ptr<ShardSet>> shard_sets(sweep.size());
  std::vector<std::unique_ptr<ShardSet>> part_sets(sweep.size());
  for (size_t i = 1; i < sweep.size(); ++i) {
    shard_sets[i] = std::make_unique<ShardSet>(BuildTpchShards(*db, sweep[i]));
    shard_sets[i]->FreezeAll();
    part_sets[i] = std::make_unique<ShardSet>();
    part_sets[i]->Add(db->lineitem, sweep[i], col::lineitem::partkey);
    part_sets[i]->FreezeAll();
  }
  db->FreezeAll();
  // A pool with one worker per slot, so every slot consumes concurrently
  // (the process-default pool is sized to the hardware; on a small box it
  // would leave most slots idle and hide the per-slot state replication
  // that sharding removes).
  Scheduler sched(Scheduler::Options{.num_workers = threads});
  std::printf("lineitem rows = %llu, %d reps, %u slots\n\n",
              (unsigned long long)db->lineitem.num_rows(), reps, threads);

  std::printf("%-18s", "pipeline");
  for (unsigned s : sweep) std::printf("  shards=%-8u", s);
  std::printf("\n");

  std::vector<double> sums(sweep.size(), 0.0);
  uint64_t combined = 1469598103934665603ull;
  bool checks_ok = true;
  const char* leg_names[5] = {"hashagg_shardkey", "hashagg_orderkey",
                              "hashagg_partkey", "dense_orderkey",
                              "scan_filter_sum"};
  for (int which = 0; which < 5; ++which) {
    // Reps are interleaved ACROSS shard counts (rep-major, not
    // cell-major): slow load drift on a shared box then hits every shard
    // count's sample set alike instead of biasing whole columns, so the
    // per-cell medians stay comparable.
    std::vector<std::vector<double>> samples(sweep.size());
    std::vector<uint64_t> checksums(sweep.size(), 0);
    for (int r = 0; r < reps; ++r) {
      for (size_t i = 0; i < sweep.size(); ++i) {
        ScanOptions opt;
        opt.mode = ScanMode::kDataBlocksPsma;
        opt.ctx.threads = threads;
        opt.ctx.scheduler = &sched;
        opt.ctx.shards = shard_sets[i].get();  // null at shards=1
        namespace li = col::lineitem;
        Sample s;
        switch (which) {
          case 0:
            opt.ctx.shards = part_sets[i].get();  // partkey-sharded family
            s = RunHashAgg(*db, opt, li::partkey, /*key_is_i64=*/false);
            break;
          case 1:
            s = RunHashAgg(*db, opt, li::orderkey, /*key_is_i64=*/true);
            break;
          case 2:
            s = RunHashAgg(*db, opt, li::partkey, /*key_is_i64=*/false);
            break;
          case 3:
            s = RunDenseAgg(*db, opt);
            break;
          default:
            s = RunFilterSum(*db, opt);
            break;
        }
        samples[i].push_back(s.secs);
        checksums[i] = s.checksum;
      }
    }
    std::printf("%-18s", leg_names[which]);
    for (size_t i = 0; i < sweep.size(); ++i) {
      const double median = BenchMedian(samples[i]);
      sums[i] += median;
      BenchJsonRecord(leg_names[which], "s=" + std::to_string(sweep[i]),
                      median * 1e9, double(db->lineitem.num_rows()) / median);
      std::printf("  %9.4fs   ", median);
      if (checksums[i] != checksums[0]) {
        checks_ok = false;
        std::fprintf(stderr, "FAIL: %s checksum diverges across shards\n",
                     leg_names[which]);
      }
    }
    std::printf("\n");
    combined = HashCombine(combined, checksums[0]);
  }

  std::printf("%-18s", "sum");
  for (double s : sums) std::printf("  %9.4fs   ", s);
  std::printf("\n\n");
  for (size_t i = 1; i < sweep.size(); ++i) {
    std::printf("shards=%u vs shards=1: %.2fx on sum-of-medians\n", sweep[i],
                sums[0] / sums[i]);
  }
  if (!checks_ok) {
    std::fprintf(stderr, "result checksums diverged across shard counts\n");
    return 1;
  }
  std::printf("result checksum: %016llx\n", (unsigned long long)combined);
  return 0;
}
