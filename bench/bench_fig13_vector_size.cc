// Figure 13 (Appendix A): geometric mean of the 22 TPC-H query runtimes as
// a function of the scan vector size, for vectorized scans on uncompressed
// chunks and on Data Blocks.

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "tpch/queries.h"
#include "util/timer.h"

#include "bench_common.h"

using namespace datablocks;
using namespace datablocks::tpch;

namespace {

double GeoMeanSeconds(const TpchDatabase& db, ScanMode mode,
                      uint32_t vector_size) {
  double logsum = 0;
  for (int q = 1; q <= 22; ++q) {
    Timer t;
    RunQuery(q, db, ScanOptions{.mode = mode, .vector_size = vector_size});
    logsum += std::log(t.ElapsedSeconds());
  }
  return std::exp(logsum / 22.0);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = BenchQuickMode(&argc, argv);
  TpchConfig cfg;
  cfg.scale_factor = argc > 1 ? atof(argv[1]) : (quick ? 0.02 : 0.1);
  const bool full_sweep = argc > 2 && atoi(argv[2]) != 0;

  std::printf("generating TPC-H SF %.2f (hot + frozen)...\n",
              cfg.scale_factor);
  auto hot = MakeTpch(cfg);
  auto frozen = MakeTpch(cfg);
  frozen->FreezeAll();

  std::vector<uint32_t> sizes =
      full_sweep ? std::vector<uint32_t>{256, 512, 1024, 2048, 4096, 8192,
                                         16384, 32768, 65536}
                 : std::vector<uint32_t>{256, 1024, 8192, 65536};

  std::printf(
      "\n=== Figure 13: geometric mean of TPC-H runtimes vs vector size "
      "(SF %.2f) ===\n",
      cfg.scale_factor);
  std::printf("%-12s %22s %18s\n", "vector size", "vectorized uncompressed",
              "Data Block scan");
  for (uint32_t vs : sizes) {
    double uncompressed = GeoMeanSeconds(*hot, ScanMode::kVectorizedSarg, vs);
    double blocks = GeoMeanSeconds(*frozen, ScanMode::kDataBlocksPsma, vs);
    std::printf("%-12u %20.3fs %16.3fs\n", vs, uncompressed, blocks);
  }
  std::printf(
      "\n(The paper's curve is U-shaped: interpretation overhead at small\n"
      " vectors, cache eviction beyond the L2-resident size; 8192 is the\n"
      " sweet spot used as HyPer's default.)\n");
  return 0;
}
