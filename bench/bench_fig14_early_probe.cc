// Figure 14 / Appendix E: vectorized early probing of a selective hash join
// inside the Data Block scan. The build side is a restricted dimension
// (orders in a narrow date range); the probe side is lineitem. Early
// probing filters the match vector with the 16-bit directory tags *before*
// unpacking payload columns, avoiding decompression of never-joining rows.

#include <cstdio>
#include <cstdlib>

#include "exec/hash_table.h"
#include "tpch/queries.h"
#include "util/date.h"
#include "util/timer.h"

#include "bench_common.h"

using namespace datablocks;
using namespace datablocks::tpch;

namespace {

struct JoinResult {
  int64_t revenue = 0;
  uint64_t probe_rows = 0;
  uint64_t unpacked_rows = 0;
};

JoinResult RunJoin(const TpchDatabase& db, const JoinHashTable& ht,
                   bool early_probe) {
  namespace li = col::lineitem;
  JoinResult res;
  // The block scan is driven manually to place the early probe between
  // match finding and payload unpacking (Figure 14 steps 1-4).
  std::vector<uint32_t> positions(8192 + 8);
  std::vector<uint64_t> keys(8192);
  for (size_t c = 0; c < db.lineitem.num_chunks(); ++c) {
    const DataBlock* block = db.lineitem.frozen_block(c);
    if (block == nullptr) continue;
    uint32_t rows = block->num_rows();
    for (uint32_t from = 0; from < rows; from += 8192) {
      uint32_t to = std::min(from + 8192u, rows);
      uint32_t n = to - from;
      for (uint32_t i = 0; i < n; ++i) positions[i] = from + i;
      // Unpack the join key.
      ColumnVector key_col;
      key_col.Init(TypeId::kInt64);
      UnpackColumn(*block, li::orderkey, positions.data(), n, &key_col);
      res.probe_rows += n;
      if (early_probe) {
        for (uint32_t i = 0; i < n; ++i)
          keys[i] = uint64_t(key_col.i64[i]);
        n = ht.EarlyProbe(keys.data(), positions.data(), n, positions.data());
        // Re-unpack the surviving keys only.
        key_col.Init(TypeId::kInt64);
        UnpackColumn(*block, li::orderkey, positions.data(), n, &key_col);
      }
      if (n == 0) continue;
      res.unpacked_rows += n;
      ColumnVector price, disc;
      price.Init(TypeId::kInt64);
      disc.Init(TypeId::kInt32);
      UnpackColumn(*block, li::extendedprice, positions.data(), n, &price);
      UnpackColumn(*block, li::discount, positions.data(), n, &disc);
      for (uint32_t i = 0; i < n; ++i) {
        uint64_t ok = uint64_t(key_col.i64[i]);
        ht.Probe(ok, [&](uint64_t) {
          res.revenue += price.i64[i] * (100 - disc.i32[i]);
        });
      }
    }
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = BenchQuickMode(&argc, argv);
  TpchConfig cfg;
  cfg.scale_factor = argc > 1 ? atof(argv[1]) : (quick ? 0.02 : 0.5);

  std::printf("generating TPC-H SF %.2f...\n", cfg.scale_factor);
  auto db = MakeTpch(cfg);
  db->FreezeAll();

  // Build side: orders of one quarter (~3.5% of orders).
  namespace ord = col::orders;
  JoinHashTable ht(size_t(db->NumOrders() / 25));
  {
    ScanOptions opt;
    TableScanner scan = opt.Scan(
        *&db->orders, {ord::orderkey},
        {Predicate::Between(ord::orderdate,
                            Value::Int(MakeDate(1994, 1, 1)),
                            Value::Int(MakeDate(1994, 3, 31)))});
    Batch b;
    while (scan.Next(&b))
      for (uint32_t i = 0; i < b.count; ++i)
        ht.Insert(uint64_t(b.cols[0].i64[i]), 1);
  }
  std::printf("build side: %zu orders\n", ht.size());

  Timer t;
  JoinResult plain = RunJoin(*db, ht, false);
  double plain_s = t.ElapsedSeconds();
  t.Reset();
  JoinResult early = RunJoin(*db, ht, true);
  double early_s = t.ElapsedSeconds();

  if (plain.revenue != early.revenue) {
    std::printf("JOIN RESULT MISMATCH\n");
    return 1;
  }

  std::printf(
      "\n=== Figure 14: early probing of tagged hash joins in the scan "
      "===\n");
  std::printf("%-26s %12s %16s %14s\n", "variant", "time",
              "tuples unpacked", "speedup");
  std::printf("%-26s %10.1fms %16llu %13.2fx\n", "probe in pipeline",
              plain_s * 1e3, (unsigned long long)plain.unpacked_rows, 1.0);
  std::printf("%-26s %10.1fms %16llu %13.2fx\n", "early probe in scan",
              early_s * 1e3, (unsigned long long)early.unpacked_rows,
              plain_s / early_s);
  std::printf("\njoin revenue check: %.2f (both variants)\n",
              double(plain.revenue) / 1e4);
  return 0;
}
