// Table 3: throughput of random point-access queries
//   select * from customer where c_custkey = randomCustKey()
// with / without a primary-key index, on uncompressed storage and on Data
// Blocks (± PSMA), for both the natural c_custkey order and a shuffled
// relation (where SMAs/PSMAs cannot narrow the scan).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <random>

#include "exec/table_scanner.h"
#include "storage/pk_index.h"
#include "tpch/tpch_db.h"
#include "util/timer.h"

#include "bench_common.h"

using namespace datablocks;
using namespace datablocks::tpch;

namespace {

std::unique_ptr<Table> CopyRows(const Table& src, bool shuffle,
                                uint64_t seed) {
  std::vector<RowId> ids;
  for (size_t c = 0; c < src.num_chunks(); ++c)
    for (uint32_t r = 0; r < src.chunk_rows(c); ++r)
      ids.push_back(MakeRowId(c, r));
  if (shuffle) {
    std::mt19937_64 rng(seed);
    std::shuffle(ids.begin(), ids.end(), rng);
  }
  auto dst = std::make_unique<Table>(src.name() + "_copy", src.schema(),
                                     src.chunk_capacity());
  std::vector<Value> row(src.schema().num_columns());
  for (RowId id : ids) {
    for (uint32_t c = 0; c < src.schema().num_columns(); ++c)
      row[c] = src.GetValue(id, c);
    dst->Insert(row);
  }
  return dst;
}

/// One point query via a full (SMA/PSMA-narrowed) scan.
uint64_t LookupByScan(const Table& t, int64_t key, ScanMode mode) {
  TableScanner scan(t, {col::customer::custkey, col::customer::acctbal},
                    {Predicate::Eq(col::customer::custkey, Value::Int(key))},
                    mode);
  Batch b;
  uint64_t found = 0;
  while (scan.Next(&b)) found += b.count;
  return found;
}

double ScanLookupsPerSecond(const Table& t, ScanMode mode, int64_t max_key,
                            int probes) {
  std::mt19937_64 rng(7);
  Timer timer;
  uint64_t found = 0;
  for (int i = 0; i < probes; ++i)
    found += LookupByScan(t, int64_t(rng() % uint64_t(max_key)) + 1, mode);
  double secs = timer.ElapsedSeconds();
  if (found == 0) std::abort();
  return probes / secs;
}

double IndexLookupsPerSecond(const Table& t, const PkIndex& idx,
                             int64_t max_key, int probes) {
  std::mt19937_64 rng(9);
  Timer timer;
  uint64_t sink = 0;
  for (int i = 0; i < probes; ++i) {
    auto rid = idx.Lookup(int64_t(rng() % uint64_t(max_key)) + 1);
    if (rid) {
      // Reconstruct the full tuple, like `select *`.
      for (uint32_t c = 0; c < t.schema().num_columns(); ++c) {
        switch (t.schema().type(c)) {
          case TypeId::kString:
            sink += t.GetStringView(*rid, c).size();
            break;
          case TypeId::kDouble:
            sink += uint64_t(t.GetDouble(*rid, c));
            break;
          default:
            sink += uint64_t(t.GetInt(*rid, c));
        }
      }
    }
  }
  double secs = timer.ElapsedSeconds();
  if (sink == 0) std::abort();
  return probes / secs;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = BenchQuickMode(&argc, argv);
  BenchJsonMode(&argc, argv, quick);
  TpchConfig cfg;
  cfg.scale_factor = argc > 1 ? atof(argv[1]) : (quick ? 0.02 : 0.5);
  const int idx_probes = quick ? 5000 : 200000;
  const int scan_probes = quick ? 5 : 200;

  std::printf("generating TPC-H SF %.2f customer relation...\n",
              cfg.scale_factor);
  auto db = MakeTpch(cfg);
  const int64_t max_key = db->NumCustomers();

  // Four table states: {ordered, shuffled} x {uncompressed, frozen}.
  Table& hot_ordered = db->customer;
  auto shuffled = CopyRows(hot_ordered, /*shuffle=*/true, 3);
  auto frozen_ord_owner = CopyRows(hot_ordered, /*shuffle=*/false, 0);
  Table& frozen_ord = *frozen_ord_owner;
  frozen_ord.FreezeAll();
  auto frozen_shuf = CopyRows(hot_ordered, /*shuffle=*/true, 3);
  frozen_shuf->FreezeAll();

  PkIndex idx_hot_ord(hot_ordered, col::customer::custkey);
  PkIndex idx_hot_shuf(*shuffled, col::customer::custkey);
  PkIndex idx_frozen_ord(frozen_ord, col::customer::custkey);
  PkIndex idx_frozen_shuf(*frozen_shuf, col::customer::custkey);

  std::printf(
      "\n=== Table 3: point-access throughput (lookups/s), SF %.2f ===\n",
      cfg.scale_factor);
  std::printf("%-34s %14s %14s\n", "configuration", "ordered", "shuffled");

  auto report = [](const char* label, const char* json_name, double ordered,
                   double shuffled) {
    std::printf("%-34s %14.0f %14.0f\n", label, ordered, shuffled);
    BenchJsonRecord(json_name, "ordered", 1e9 / ordered, ordered);
    BenchJsonRecord(json_name, "shuffled", 1e9 / shuffled, shuffled);
  };

  report("uncompressed (JIT)    PK index", "table3_pk_index_hot",
         IndexLookupsPerSecond(hot_ordered, idx_hot_ord, max_key, idx_probes),
         IndexLookupsPerSecond(*shuffled, idx_hot_shuf, max_key, idx_probes));
  report("Data Blocks           PK index", "table3_pk_index_frozen",
         IndexLookupsPerSecond(frozen_ord, idx_frozen_ord, max_key,
                               idx_probes),
         IndexLookupsPerSecond(*frozen_shuf, idx_frozen_shuf, max_key,
                               idx_probes));
  report("uncompressed (JIT)    no index", "table3_scan_jit",
         ScanLookupsPerSecond(hot_ordered, ScanMode::kJit, max_key,
                              scan_probes),
         ScanLookupsPerSecond(*shuffled, ScanMode::kJit, max_key,
                              scan_probes));
  report("uncompressed (VEC)    no index", "table3_scan_vec_sarg",
         ScanLookupsPerSecond(hot_ordered, ScanMode::kVectorizedSarg, max_key,
                              scan_probes),
         ScanLookupsPerSecond(*shuffled, ScanMode::kVectorizedSarg, max_key,
                              scan_probes));
  report("Data Blocks (SMA)     no index", "table3_scan_sma",
         ScanLookupsPerSecond(frozen_ord, ScanMode::kDataBlocks, max_key,
                              scan_probes),
         ScanLookupsPerSecond(*frozen_shuf, ScanMode::kDataBlocks, max_key,
                              scan_probes));
  report("Data Blocks +PSMA     no index", "table3_scan_psma",
         ScanLookupsPerSecond(frozen_ord, ScanMode::kDataBlocksPsma, max_key,
                              scan_probes),
         ScanLookupsPerSecond(*frozen_shuf, ScanMode::kDataBlocksPsma,
                              max_key, scan_probes));
  std::printf(
      "\n(Expected shape, per the paper: indexed lookups on Data Blocks run\n"
      " at a constant factor below uncompressed; index-less scans are\n"
      " orders of magnitude slower except on ordered Data Blocks, where\n"
      " SMAs/PSMAs narrow the scan; shuffling removes that advantage.)\n");
  return 0;
}
