#!/usr/bin/env python3
"""Diff two bench JSON files (or directories of BENCH_*.json) and flag
performance regressions.

The bench binaries write one JSON file each when run with `--json <path>`
(see bench/bench_common.h); every result is keyed by (bench, name, config)
and carries a median ns/op. This tool pairs the results of a baseline run
with a candidate run and fails (exit 1) when any pair regressed by more
than the threshold — unless --warn-only is given, which is the right mode
on noisy shared CI runners.

Usage:
  bench_compare.py BASELINE CANDIDATE [--threshold 25] [--warn-only]

BASELINE and CANDIDATE are either single JSON files or directories, in
which case every BENCH_*.json inside is loaded.
"""

import argparse
import glob
import json
import os
import sys


def find_files(path):
    """Bench JSON files at `path`; empty when the path has none."""
    if os.path.isdir(path):
        files = sorted(glob.glob(os.path.join(path, "BENCH_*.json")))
        if not files:
            files = sorted(glob.glob(os.path.join(path, "*.json")))
        return files
    return [path] if os.path.exists(path) else []


def load_results(path):
    """Returns ({(bench, name, config): result_dict}, has_metrics)."""
    files = find_files(path)
    if not files:
        sys.exit(f"error: no bench JSON files found under {path}")
    results = {}
    has_metrics = False
    for f in files:
        with open(f) as fp:
            data = json.load(fp)
        bench = data.get("bench", os.path.basename(f))
        has_metrics = has_metrics or "metrics" in data
        for r in data.get("results", []):
            key = (bench, r["name"], r["config"])
            if key in results:
                print(f"warning: duplicate result {key} in {f}",
                      file=sys.stderr)
            results[key] = dict(r, quick=data.get("quick", False),
                                threads=data.get("threads", 1),
                                shards=data.get("shards", 1))
    return results, has_metrics


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="baseline JSON file or directory")
    ap.add_argument("candidate", help="candidate JSON file or directory")
    ap.add_argument("--threshold", type=float, default=25.0,
                    help="regression threshold in percent (default 25)")
    ap.add_argument("--latency-threshold", type=float, default=None,
                    help="separate threshold for latency-percentile entries "
                         "(config p50/p95/p99, e.g. bench_serve's per-class "
                         "serving latencies); tail latency on shared runners "
                         "is noisier than a scan median, so this is usually "
                         "looser. Default: same as --threshold")
    ap.add_argument("--warn-only", action="store_true",
                    help="report regressions but exit 0 (shared runners)")
    ap.add_argument("--baseline-optional", action="store_true",
                    help="when the baseline is absent (fresh cache / first "
                         "run), print a note and exit 0 instead of failing")
    args = ap.parse_args()

    if args.baseline_optional and not find_files(args.baseline):
        print(f"no baseline under {args.baseline}: recording only, nothing "
              "to compare — this run's results become the next baseline")
        return 0

    base, base_metrics = load_results(args.baseline)
    cand, cand_metrics = load_results(args.candidate)
    if cand_metrics and not base_metrics:
        # Cached baselines can predate the "metrics" section of the bench
        # JSON (added with the observability subsystem). Timings still
        # compare fine — the section is informational and never diffed.
        print("note: no metrics section in baseline (predates "
              "observability); comparing timings only")

    regressions = []
    improvements = []
    compared = 0
    for key, c in sorted(cand.items()):
        b = base.get(key)
        if b is None:
            continue
        if b.get("quick") != c.get("quick"):
            print(f"warning: {key} mixes quick and full-mode numbers; "
                  "skipping", file=sys.stderr)
            continue
        if b.get("threads") != c.get("threads"):
            print(f"warning: {key} mixes thread counts "
                  f"({b.get('threads')} vs {c.get('threads')}); skipping",
                  file=sys.stderr)
            continue
        if b.get("shards") != c.get("shards"):
            print(f"warning: {key} mixes shard counts "
                  f"({b.get('shards')} vs {c.get('shards')}); skipping",
                  file=sys.stderr)
            continue
        if b["median_ns_op"] <= 0:
            continue
        compared += 1
        is_latency = key[2] in ("p50", "p95", "p99")
        threshold = args.latency_threshold \
            if is_latency and args.latency_threshold is not None \
            else args.threshold
        delta_pct = 100.0 * (c["median_ns_op"] - b["median_ns_op"]) \
            / b["median_ns_op"]
        unit = "ns" if is_latency else "ns/op"
        line = (f"{key[0]} :: {key[1]} [{key[2]}] "
                f"{b['median_ns_op']:.4g} -> {c['median_ns_op']:.4g} {unit} "
                f"({delta_pct:+.1f}%)")
        if delta_pct > threshold:
            regressions.append(line)
        elif delta_pct < -threshold:
            improvements.append(line)
        # Aggregation-state bytes barely depend on runner speed, so growth
        # past the threshold is a real state-size regression. Sub-MB
        # states are skipped: they are dominated by demand-allocated
        # spill/scratch buffers, which vary with morsel interleaving.
        sb = b.get("state_peak_bytes", -1)
        sc = c.get("state_peak_bytes", -1)
        if sb > 0 and sc >= 0 and max(sb, sc) >= 1e6:
            sdelta = 100.0 * (sc - sb) / sb
            sline = (f"{key[0]} :: {key[1]} [{key[2]}] state "
                     f"{sb:.4g} -> {sc:.4g} bytes ({sdelta:+.1f}%)")
            if sdelta > args.threshold:
                regressions.append(sline)
            elif sdelta < -args.threshold:
                improvements.append(sline)

    print(f"compared {compared} results "
          f"(baseline {len(base)}, candidate {len(cand)}, "
          f"threshold {args.threshold:.0f}%)")
    for line in improvements:
        print(f"  IMPROVED  {line}")
    for line in regressions:
        print(f"  REGRESSED {line}")
    if not regressions:
        print("no regressions past threshold")
        return 0
    if args.warn_only:
        print(f"{len(regressions)} regression(s) past threshold "
              "(warn-only mode, not failing)")
        return 0
    print(f"FAIL: {len(regressions)} regression(s) past threshold")
    return 1


if __name__ == "__main__":
    sys.exit(main())
