#!/usr/bin/env python3
"""Pretty-print (and schema-check) the observability JSON outputs.

Input files, auto-detected by their top-level keys:

  * a profile file written by a bench run with `--profile-json <path>`
    ({"bench": ..., "profiles": [...]}) — one QueryProfile JSON object
    per measured (query, config), rendered as an EXPLAIN-ANALYZE-style
    tree with per-pipeline wall time, rows, block pruning and per-worker
    morsel counts;
  * a bench results file written with `--json <path>` — its "metrics"
    section (obs::MetricsRegistry::ToJson()) is rendered as a sorted
    metric table with histogram p50/p95/p99;
  * a trace dump (obs::TraceRing::DumpJsonl(), one JSON object per line)
    — rendered as a chronological event table.

`--check-schema tools/profile_schema.json` validates every profile
object against the checked-in schema stub and exits non-zero on any
violation; the CI bench-smoke job runs exactly that against a freshly
profiled query. Only the JSON-Schema subset used by the stub is
implemented (type / required / properties / items) — this is a format
guard, not a general validator.

Usage:
  profile_report.py FILE [--check-schema SCHEMA] [--quiet]
"""

import argparse
import json
import sys


# ---------------------------------------------------------------------------
# Minimal structural schema validation (type/required/properties/items)
# ---------------------------------------------------------------------------

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "integer": int,
    "boolean": bool,
}


def validate(value, schema, path="$"):
    """Returns a list of violation strings (empty = valid)."""
    errors = []
    expected = schema.get("type")
    if expected is not None:
        py = _TYPES[expected]
        # bool is a subclass of int in Python; don't let true pass as 1.
        if not isinstance(value, py) or (
                expected in ("number", "integer") and isinstance(value, bool)):
            errors.append(f"{path}: expected {expected}, "
                          f"got {type(value).__name__}")
            return errors
    if isinstance(value, dict):
        for req in schema.get("required", []):
            if req not in value:
                errors.append(f"{path}: missing required member '{req}'")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                errors.extend(validate(value[key], sub, f"{path}.{key}"))
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            errors.extend(validate(item, schema["items"], f"{path}[{i}]"))
    return errors


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

def ms(ns):
    return f"{ns / 1e6:.2f} ms"


def count(n):
    if n >= 1e9:
        return f"{n / 1e9:.2f}G"
    if n >= 1e6:
        return f"{n / 1e6:.2f}M"
    if n >= 1e4:
        return f"{n / 1e3:.1f}k"
    return str(n)


def print_span(span, indent):
    print(f"{indent}span {span['name']}  wall {ms(span['wall_ns'])}")
    for child in span.get("children", []):
        print_span(child, indent + "  ")


def print_profile(p):
    header = p["query"]
    if p.get("config"):
        header += f" [{p['config']}]"
    shards = f"  shards={p['shards']}" if p.get("shards", 1) > 1 else ""
    print(f"{header}  threads={p['threads']}{shards}  "
          f"wall {ms(p['wall_ns'])}")
    for pl in p.get("pipelines", []):
        print(f"  pipeline {pl['name']}  wall {ms(pl['wall_ns'])}  "
              f"rows {count(pl['rows_in'])} -> {count(pl['rows_out'])}  "
              f"morsels {pl['morsels']}  batches {pl['batches']} "
              f"({pl['code_batches']} coded)")
        print(f"    blocks: {pl['chunks_scanned']} scanned, "
              f"{pl['chunks_pruned']} pruned "
              f"({pl['evicted_chunks_pruned']} evicted, summary-only), "
              f"pins {pl['pins']}, archive reloads {pl['archive_reloads']}")
        if pl.get("merge_ns", 0) > 0:
            print(f"    merge {ms(pl['merge_ns'])}")
        for w in pl.get("workers", []):
            print(f"    worker {w['slot']}: morsels {w['morsels']}  "
                  f"batches {w['batches']}  rows {count(w['rows'])}  "
                  f"busy {ms(w['busy_ns'])}")
        for s in pl.get("shards", []):
            print(f"    shard {s['shard']}: morsels {s['morsels']}  "
                  f"batches {s['batches']}  rows {count(s['rows'])}")
    for span in p.get("spans", []):
        print_span(span, "  ")


def print_metrics(metrics):
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    histograms = metrics.get("histograms", {})
    width = max((len(n) for d in (counters, gauges, histograms)
                 for n in d), default=0)
    for name in sorted(counters):
        print(f"  {name:<{width}}  counter    {counters[name]}")
    for name in sorted(gauges):
        print(f"  {name:<{width}}  gauge      {gauges[name]}")
    for name in sorted(histograms):
        h = histograms[name]
        print(f"  {name:<{width}}  histogram  count={h['count']} "
              f"p50={h['p50']:.3g} p95={h['p95']:.3g} p99={h['p99']:.3g}")


def print_trace(events):
    for e in events:
        print(f"  #{e['seq']:<6} {e['ts_ns'] / 1e6:12.3f} ms  "
              f"{e['cat']:<12} {e['name']:<16} a={e['a']} b={e['b']}")


# ---------------------------------------------------------------------------


def load(path):
    """One JSON document, or a list of per-line documents (trace JSONL)."""
    with open(path) as fp:
        text = fp.read()
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        events = [json.loads(line) for line in text.splitlines() if line]
        return {"trace": events}


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("file", help="profile / bench-results / trace JSON file")
    ap.add_argument("--check-schema", metavar="SCHEMA",
                    help="validate profile objects against this schema stub")
    ap.add_argument("--quiet", action="store_true",
                    help="schema check only, no pretty-printing")
    args = ap.parse_args()

    data = load(args.file)
    profiles = data.get("profiles", [])
    rc = 0

    if args.check_schema:
        with open(args.check_schema) as fp:
            schema = json.load(fp)
        if not profiles:
            sys.exit(f"error: no profiles in {args.file} to check")
        errors = []
        for i, p in enumerate(profiles):
            errors.extend(validate(p, schema, path=f"profiles[{i}]"))
        for err in errors:
            print(f"SCHEMA VIOLATION {err}", file=sys.stderr)
        if errors:
            return 1
        print(f"schema OK: {len(profiles)} profile(s) match "
              f"{args.check_schema}")

    if args.quiet:
        return rc

    for p in profiles:
        print_profile(p)
        print()
    if "metrics" in data:
        print("metrics:")
        print_metrics(data["metrics"])
    if "trace" in data:
        print(f"trace ({len(data['trace'])} events):")
        print_trace(data["trace"])
    if not profiles and "metrics" not in data and "trace" not in data:
        sys.exit(f"error: {args.file} has no profiles, metrics, or trace "
                 "events")
    return rc


if __name__ == "__main__":
    sys.exit(main())
