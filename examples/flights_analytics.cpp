// Flights analytics (paper Section 5.2 / Appendix D): on naturally
// date-ordered data, SMAs skip most blocks outright and PSMAs narrow the
// scan range inside the remaining ones — the paper reports >20x for this
// query vs. a JIT scan of uncompressed data.

#include <cstdio>

#include "util/timer.h"
#include "workloads/flights.h"

using namespace datablocks;
using namespace datablocks::workloads;

int main(int argc, char** argv) {
  FlightsConfig cfg;
  cfg.num_rows = argc > 1 ? uint64_t(atoll(argv[1])) : 4'000'000;

  std::printf("generating %llu flight rows (1987-10 .. 2008-04)...\n",
              (unsigned long long)cfg.num_rows);
  auto flights = MakeFlights(cfg);
  uint64_t hot_bytes = flights->MemoryBytes();

  // Measure the query on hot (uncompressed) storage first.
  Timer t;
  auto ref = RunFlightsQuery(*flights, ScanMode::kJit);
  double jit_ms = t.ElapsedMillis();

  flights->FreezeAll();
  std::printf("compressed %.1f MB -> %.1f MB (%.2fx)\n\n",
              double(hot_bytes) / 1e6, double(flights->MemoryBytes()) / 1e6,
              double(hot_bytes) / double(flights->MemoryBytes()));

  std::printf("%-28s %10s %10s\n", "scan", "time", "speedup");
  std::printf("%-28s %8.1fms %9s\n", "JIT scan (uncompressed)", jit_ms, "1.0x");
  for (ScanMode mode : {ScanMode::kDecompressAll, ScanMode::kDataBlocks,
                        ScanMode::kDataBlocksPsma}) {
    t.Reset();
    auto result = RunFlightsQuery(*flights, mode);
    double ms = t.ElapsedMillis();
    std::printf("%-28s %8.1fms %8.1fx\n", ScanModeName(mode), ms,
                jit_ms / ms);
    if (result.size() != ref.size()) {
      std::printf("RESULT MISMATCH!\n");
      return 1;
    }
  }

  std::printf("\ncarriers by average arrival delay into SFO, 1998-2008:\n");
  for (const CarrierDelay& cd : ref) {
    std::printf("  %-3s %6.2f min  (%lld flights)\n", cd.carrier.c_str(),
                cd.avg_delay, (long long)cd.count);
  }
  return 0;
}
