// Hybrid OLTP & OLAP on one database state (paper Figure 1): transactional
// updates hit hot chunks and relocate frozen records, while analytical
// scans run over the same table across both storage forms — with the block
// lifecycle subsystem freezing cooled-down chunks in the background and
// evicting cold blocks to an archive under a memory budget.

#include <algorithm>
#include <cstdio>

#include "exec/table_scanner.h"
#include "lifecycle/lifecycle_manager.h"
#include "storage/pk_index.h"
#include "util/date.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace datablocks;

namespace {

int64_t TotalOpenAmount(const Table& orders, ScanMode mode) {
  // OLAP: sum the amounts of all open ('O') orders.
  TableScanner scan(orders, {2},
                    {Predicate::Eq(3, Value::Int('O'))}, mode);
  Batch b;
  int64_t total = 0;
  while (scan.Next(&b))
    for (uint32_t i = 0; i < b.count; ++i) total += b.cols[0].i64[i];
  return total;
}

}  // namespace

int main() {
  Schema schema({{"order_id", TypeId::kInt64},
                 {"customer_id", TypeId::kInt32},
                 {"amount", TypeId::kInt64},
                 {"status", TypeId::kChar1},
                 {"order_date", TypeId::kDate}});
  Table orders("orders", schema, 65536);
  Rng rng(7);

  // Historical (cold) orders...
  const int64_t kHistory = 2'000'000;
  std::vector<Value> row;
  for (int64_t i = 0; i < kHistory; ++i) {
    row = {Value::Int(i), Value::Int(rng.Uniform(1, 100000)),
           Value::Int(rng.Uniform(100, 100000)),
           Value::Char(rng.Uniform(0, 9) == 0 ? 'O' : 'F'),
           Value::Int(MakeDate(2024, 1, 1) + int32_t(i / 5000))};
    orders.Insert(row);
  }
  uint64_t before = orders.MemoryBytes();
  orders.FreezeAll();  // ...get compressed into Data Blocks.
  std::printf("cold history frozen: %.1f MB -> %.1f MB\n",
              double(before) / 1e6, double(orders.MemoryBytes()) / 1e6);

  PkIndex pk(orders, 0);
  int64_t next_id = kHistory;

  // Block lifecycle: a background thread freezes chunks once OLTP traffic
  // cools down on them and keeps only half the frozen bytes resident; the
  // rest is evicted to the archive and reloaded transparently when the
  // OLAP scan or a point read touches it.
  LifecycleConfig lcfg;
  lcfg.cold_threshold = 2;
  lcfg.freeze_after_cold_epochs = 2;
  lcfg.memory_budget_bytes = orders.FrozenBytes() / 2;
  lcfg.tick_interval = std::chrono::milliseconds(10);
  LifecycleManager lifecycle(&orders, "/tmp/hybrid_orders.dbar", lcfg);
  lifecycle.Start();

  // Interleave OLTP transactions with OLAP queries on the same state.
  Timer oltp_timer;
  int txns = 0;
  for (int round = 0; round < 5; ++round) {
    // A burst of transactions: inserts, point reads, updates of frozen
    // rows. Accesses are skewed to recent orders (as in real OLTP), so old
    // chunks cool down and the lifecycle can evict them without thrashing.
    constexpr int64_t kHotWindow = 200'000;
    for (int i = 0; i < 20000; ++i, ++txns) {
      int64_t pick =
          rng.Uniform(std::max<int64_t>(0, next_id - kHotWindow), next_id - 1);
      switch (rng.Uniform(0, 2)) {
        case 0: {  // new order -> hot tail
          row = {Value::Int(next_id), Value::Int(rng.Uniform(1, 100000)),
                 Value::Int(rng.Uniform(100, 100000)), Value::Char('O'),
                 Value::Int(MakeDate(2026, 6, 10))};
          pk.Put(next_id, orders.Insert(row));
          ++next_id;
          break;
        }
        case 1: {  // point read (may decompress a single frozen position)
          if (auto rid = pk.Lookup(pick)) {
            volatile int64_t amount = orders.GetInt(*rid, 2);
            (void)amount;
          }
          break;
        }
        case 2: {  // close an order: frozen rows relocate to hot storage
          if (auto rid = pk.Lookup(pick)) {
            row = {Value::Int(pick), Value::Int(int32_t(orders.GetInt(*rid, 1))),
                   Value::Int(orders.GetInt(*rid, 2)), Value::Char('F'),
                   Value::Int(int32_t(orders.GetInt(*rid, 4)))};
            pk.Put(pick, orders.Update(*rid, row));
          }
          break;
        }
      }
    }
    double tps = txns / oltp_timer.ElapsedSeconds();

    Timer olap_timer;
    int64_t open_frozen = TotalOpenAmount(orders, ScanMode::kDataBlocksPsma);
    double olap_ms = olap_timer.ElapsedMillis();
    LifecycleStats ls = lifecycle.stats();
    std::printf(
        "round %d: %6.0f OLTP txn/s | OLAP open-amount=%.2f in %.1f ms "
        "(%llu rows, %llu visible) | lifecycle: %llu frozen, %llu evicted, "
        "%llu reloaded, %.1f MB resident\n",
        round + 1, tps, double(open_frozen) / 100, olap_ms,
        (unsigned long long)orders.num_rows(),
        (unsigned long long)orders.num_visible(),
        (unsigned long long)(ls.freezes + ls.adopted),
        (unsigned long long)ls.evictions, (unsigned long long)ls.reloads,
        double(ls.resident_bytes) / 1e6);
  }
  lifecycle.Stop();

  // Cross-check: the OLAP answer is identical on every scan path.
  int64_t a = TotalOpenAmount(orders, ScanMode::kJit);
  int64_t b = TotalOpenAmount(orders, ScanMode::kDataBlocksPsma);
  std::printf("JIT scan total == DataBlock scan total: %s\n",
              a == b ? "yes" : "NO (bug!)");
  std::remove("/tmp/hybrid_orders.dbar");
  return a == b ? 0 : 1;
}
