// Quickstart: create a relation, freeze cold chunks into compressed Data
// Blocks, scan it with SARGable predicates through every scan mode, and do
// OLTP-style point accesses — the core API surface of the library.

#include <cstdio>
#include <fstream>

#include "exec/table_scanner.h"
#include "storage/pk_index.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace datablocks;

int main() {
  // 1. Define a relation.
  Schema schema({{"id", TypeId::kInt64},
                 {"category", TypeId::kString},
                 {"quantity", TypeId::kInt32},
                 {"price", TypeId::kInt64},     // cents
                 {"rating", TypeId::kDouble}});
  Table sales("sales", schema, /*chunk_capacity=*/65536);

  // 2. Insert one million rows (OLTP writes go to hot, uncompressed chunks).
  Rng rng(42);
  const char* categories[4] = {"books", "games", "garden", "tools"};
  std::vector<Value> row;
  for (int64_t i = 0; i < 1000000; ++i) {
    row = {Value::Int(i), Value::Str(categories[rng.Uniform(0, 3)]),
           Value::Int(rng.Uniform(1, 50)), Value::Int(rng.Uniform(99, 9999)),
           Value::Double(rng.NextDouble() * 5)};
    sales.Insert(row);
  }
  uint64_t hot_bytes = sales.MemoryBytes();

  // 3. Freeze everything into Data Blocks (normally only *cold* chunks are
  //    frozen; FreezeChunk() gives per-chunk control).
  Timer freeze_timer;
  sales.FreezeAll();
  std::printf("frozen %llu rows in %.0f ms: %.1f MB -> %.1f MB (%.2fx)\n",
              (unsigned long long)sales.num_rows(),
              freeze_timer.ElapsedMillis(), double(hot_bytes) / 1e6,
              double(sales.MemoryBytes()) / 1e6,
              double(hot_bytes) / double(sales.MemoryBytes()));

  // 4. Analytical scan with SARGable predicates, pushed into the scan and
  //    evaluated with SIMD on the compressed data.
  for (ScanMode mode : {ScanMode::kJit, ScanMode::kVectorizedSarg,
                        ScanMode::kDataBlocks, ScanMode::kDataBlocksPsma}) {
    Timer t;
    TableScanner scan(sales, {3, 2},
                      {Predicate::Between(2, Value::Int(10), Value::Int(20)),
                       Predicate::Eq(1, Value::Str("games"))},
                      mode);
    Batch batch;
    int64_t revenue = 0, rows = 0;
    while (scan.Next(&batch)) {
      for (uint32_t i = 0; i < batch.count; ++i) {
        revenue += batch.cols[0].i64[i] * batch.cols[1].i32[i];
        ++rows;
      }
    }
    std::printf("%-22s -> %lld rows, revenue %.2f, %.1f ms\n",
                ScanModeName(mode), (long long)rows, double(revenue) / 100,
                t.ElapsedMillis());
  }

  // 5. OLTP point accesses through a primary-key index: single-position
  //    decompression from the frozen blocks.
  PkIndex pk(sales, 0);
  RowId rid = *pk.Lookup(123456);
  std::printf("point access id=123456: category=%s price=%.2f\n",
              std::string(sales.GetStringView(rid, 1)).c_str(),
              double(sales.GetInt(rid, 3)) / 100);

  // 6. Updates relocate frozen rows into the hot tail (delete + insert).
  row = {Value::Int(123456), Value::Str("books"), Value::Int(1),
         Value::Int(100), Value::Double(5.0)};
  RowId moved = sales.Update(rid, row);
  pk.Put(123456, moved);
  std::printf("after update: category=%s (row now in hot chunk %llu)\n",
              std::string(sales.GetStringView(moved, 1)).c_str(),
              (unsigned long long)RowIdChunk(moved));

  // 7. Data Blocks are flat and pointer-free: write one to disk and reload.
  {
    std::ofstream out("/tmp/block0.bin", std::ios::binary);
    sales.frozen_block(0)->Serialize(out);
  }
  std::ifstream in("/tmp/block0.bin", std::ios::binary);
  DataBlock reloaded = DataBlock::Deserialize(in);
  std::printf("serialized block: %u rows, %.1f KB on disk\n",
              reloaded.num_rows(), double(reloaded.SizeBytes()) / 1024);
  return 0;
}
